package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAnalyzeFigure4: every sweep point reports its lumpability verdicts,
// each distinct design variant carries one structural report, and the whole
// study analyzes clean.
func TestAnalyzeFigure4(t *testing.T) {
	a, err := AnalyzeExperiment("figure4", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Clean {
		t.Fatalf("figure4 configurations must analyze clean:\n%s", a.Render())
	}
	factors := Figure4ScaleFactors(true)
	if len(a.Configs) != 2*len(factors)+2 {
		t.Fatalf("got %d configs, want %d (base+spare per factor, plus the two solver cross-checks)",
			len(a.Configs), 2*len(factors)+2)
	}
	var reports int
	for _, ca := range a.Configs {
		if len(ca.Verdicts) != 4 {
			t.Fatalf("config %q has %d verdicts, want 4", ca.Label, len(ca.Verdicts))
		}
		if ca.Report != nil {
			reports++
			if !ca.Report.Clean {
				t.Fatalf("config %q structural report not clean:\n%s", ca.Label, ca.Report.Render())
			}
			if ca.Certificate == nil {
				t.Fatalf("config %q has a structural report but no solver certificate", ca.Label)
			}
		}
	}
	if reports != 4 {
		t.Fatalf("got %d structural reports, want 4 (base, spare, and the two cross-check variants)", reports)
	}
	// The first base and spare points carry the reports (reference scale).
	if a.Configs[0].Report == nil || a.Configs[1].Report == nil {
		t.Fatal("reference-scale points must carry the structural reports")
	}
	if a.Configs[2].Report != nil {
		t.Fatal("scaled repeats must omit the structural report")
	}
	// The plain ABE model is refused (non-memoryless repairs); the
	// exponential cross-check model is certified for the solver.
	if a.Configs[0].Certificate.Certified() {
		t.Fatal("plain ABE model must be refused by the solver tier")
	}
	if len(a.Configs[0].Certificate.Refusals) == 0 {
		t.Fatal("refused certificate must carry structured refusal reasons")
	}
	cross := a.Configs[len(a.Configs)-2]
	if cross.Certificate == nil || !cross.Certificate.Certified() {
		t.Fatalf("cross-check model must certify, got %+v", cross.Certificate)
	}
	// The Erlang cross-check model is refused as written and certified only
	// through the phase expansion, which the certificate records.
	erlang := a.Configs[len(a.Configs)-1]
	if erlang.Certificate == nil || !erlang.Certificate.Certified() {
		t.Fatalf("Erlang cross-check model must certify after expansion, got %+v", erlang.Certificate)
	}
	if len(erlang.Certificate.Expansions) == 0 {
		t.Fatalf("Erlang certificate must record the expansion evidence: %+v", erlang.Certificate)
	}
	if !strings.Contains(a.Render(), "solver certificate: certified") {
		t.Fatal("rendered analysis must show the certified solver certificate")
	}
	if !strings.Contains(a.Render(), "after phase expansion") {
		t.Fatal("rendered analysis must surface the certified-after-expansion summary")
	}
}

// TestAnalyzeDefaultExperiment: experiments without their own sweep configs
// are analyzed against the ABE reference composition, flat and lumped.
func TestAnalyzeDefaultExperiment(t *testing.T) {
	a, err := AnalyzeExperiment("table1", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Configs) != 2 || !a.Clean {
		t.Fatalf("unexpected default analysis: %+v", a)
	}
	for _, ca := range a.Configs {
		if ca.Report == nil {
			t.Fatalf("config %q missing structural report", ca.Label)
		}
	}
}

// TestAnalysisJSONAndRender: the analysis marshals with the documented keys
// and renders the family verdict lines abesim prints.
func TestAnalysisJSONAndRender(t *testing.T) {
	a, err := AnalyzeExperiment("figure4", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"experiment"`, `"configs"`, `"clean"`, `"verdicts"`, `"report"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("JSON missing %s", key)
		}
	}
	text := a.Render()
	for _, want := range []string{"static analysis (figure4):", "families:", "oss_pairs", "clean: true"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}
