package repro

import (
	"strings"
	"testing"

	"repro/internal/abe"
)

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("Version is empty")
	}
}

func TestConfigsAndEvaluate(t *testing.T) {
	abeCfg := ABEConfig()
	if abeCfg.Storage.TotalDisks() != 480 {
		t.Errorf("ABE disks = %d, want 480", abeCfg.Storage.TotalDisks())
	}
	peta := PetascaleConfig()
	if peta.Storage.TotalDisks() != 4800 {
		t.Errorf("petascale disks = %d, want 4800", peta.Storage.TotalDisks())
	}
	measures, err := Evaluate(abeCfg, EvaluationOptions{Replications: 8, MissionHours: 4380, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if measures.CFSAvailability <= 0.9 || measures.CFSAvailability > 1 {
		t.Errorf("CFS availability = %v", measures.CFSAvailability)
	}
}

func TestExperimentFacade(t *testing.T) {
	names := ExperimentNames()
	if len(names) == 0 {
		t.Fatal("no experiments")
	}
	out, err := RunExperiment("table5", EvaluationOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Disk MTBF") {
		t.Errorf("table5 output missing parameters:\n%s", out)
	}
	if _, err := RunExperiment("nope", EvaluationOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestLogFacade(t *testing.T) {
	logs, err := GenerateABELogs()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := AnalyzeLogs(logs, 480)
	if err != nil {
		t.Fatal(err)
	}
	if rates.CFSAvailability <= 0.9 || rates.CFSAvailability >= 1 {
		t.Errorf("log availability = %v", rates.CFSAvailability)
	}
	cfg, _, err := CalibrateFromLogs(logs, ABEConfig(), 480)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Storage.Disk.ShapeBeta == ABEConfig().Storage.Disk.ShapeBeta && cfg.Storage.Disk.MTBFHours == ABEConfig().Storage.Disk.MTBFHours {
		t.Log("calibrated parameters happen to equal defaults; acceptable but unusual")
	}
}

func TestReproducePaperFacade(t *testing.T) {
	doc, err := ReproducePaper(EvaluationOptions{Quick: true, Replications: 4, MissionHours: 2190, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"calibration"`, `"round_trip"`, `"points"`, `"tables"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("paper reproduction document missing %s section", want)
		}
	}
}

func TestCompareDesignsFacade(t *testing.T) {
	designs := map[string]abe.Config{
		"ABE baseline":       ABEConfig(),
		"ABE with spare OSS": ABEConfig().WithSpareOSS(true),
	}
	out, err := CompareDesigns(designs, EvaluationOptions{Replications: 6, MissionHours: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ABE") || !strings.Contains(out, "spare") {
		t.Errorf("comparison missing designs:\n%s", out)
	}
	if _, err := CompareDesigns(nil, EvaluationOptions{}); err == nil {
		t.Error("empty design map accepted")
	}
}
