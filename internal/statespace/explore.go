package statespace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/san"
)

// This file exhaustively generates the tangible reachable state graph of a
// memoryless, vanishing-free model. Vanishing markings (those enabling an
// instantaneous activity) are eliminated on the fly: every timed firing is
// immediately closed under the simulator's instantaneous sweep, so only
// tangible states are interned and the emitted edges carry the path
// probability and accumulated impulse rewards of the elimination.
//
// The firing semantics replicate the simulator exactly — input arcs, then
// input-gate transforms, then case selection with the simulator's mass
// normalization, then case output arcs and gates, then the activity's
// impulse rewards on the post-fire marking — so the generated CTMC is the
// chain the simulator samples, state for state and rate for rate.

// impulseBinding resolves one reward variable's impulse function for an
// activity (rebuilt from the compiled model's reward variables, which keep
// their bindings name-keyed).
type impulseBinding struct {
	rewardIndex int
	fn          san.ImpulseFunc
}

// exploreResult carries the exploration outcome into certificate assembly.
type exploreResult struct {
	err            error  // hard failure: negative marking, panicking closure, unstable sweep
	nonMemoryless  string // non-empty when a reachable state broke memorylessness
	budgetExceeded bool
	observedMax    []int // per-place maximum token count over all explored states
}

// outcome is one tangible result of a vanishing closure: the settled
// marking, the probability of the instantaneous-case path that led to it,
// and the impulse rewards earned along the path.
type outcome struct {
	mark []int
	prob float64
	imp  []float64
}

type explorer struct {
	cm        *san.CompiledModel
	inst      []*san.Activity
	timed     []*san.Activity
	nPlaces   int
	nRewards  int
	impulses  [][]impulseBinding // per activity index
	maxStates int

	states      [][]int
	index       map[string]int
	transitions [][]Transition
	observedMax []int
	overBudget  bool

	// firstRate pins the rate an activity showed when first seen enabled; a
	// different rate in another state without reactivation breaks the CTMC
	// (the clock is not resampled, so the process is not memoryless).
	firstRate map[int]float64
}

// explore runs the BFS. It assumes the memoryless and vanishing-free
// pre-checks passed; it still re-derives rates per state and re-checks
// stability, because pre-checks at the initial marking cannot see
// marking-dependent behavior. The optimized interned explorer
// (explore_fast.go) is the production path; Options.Baseline routes through
// this file's sequential reference implementation. Both produce identical
// state numbering, transitions, and refusals.
func explore(cm *san.CompiledModel, opts Options) (*Generator, exploreResult) {
	if opts.Baseline {
		return exploreBaseline(cm, opts)
	}
	return exploreFast(cm, opts)
}

// newExplorer builds the shared semantic core: the timed/instantaneous
// activity split and the per-activity impulse bindings both explorers (and
// the vanishing closure) evaluate against.
func newExplorer(cm *san.CompiledModel, opts Options) *explorer {
	model := cm.Model()
	ex := &explorer{
		cm:        cm,
		inst:      cm.Instantaneous(),
		nPlaces:   model.NumPlaces(),
		nRewards:  len(cm.Rewards()),
		maxStates: opts.MaxStates,
		index:     make(map[string]int),
		firstRate: make(map[int]float64),
	}
	for _, a := range model.Activities() {
		if a.Kind() == san.Timed {
			ex.timed = append(ex.timed, a)
		}
	}
	ex.observedMax = make([]int, ex.nPlaces)
	// Rebuild the per-activity impulse bindings from the reward variables
	// (the compiled model's pre-resolved index is private to the simulator).
	// Reward order, then sorted activity names within each reward, matching
	// the simulator's deterministic accumulation order.
	ex.impulses = make([][]impulseBinding, model.NumActivities())
	for ri, rv := range cm.Rewards() {
		names := make([]string, 0, len(rv.Impulses))
		for name := range rv.Impulses {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := model.Activity(name)
			if a == nil {
				continue
			}
			ex.impulses[a.Index()] = append(ex.impulses[a.Index()], impulseBinding{rewardIndex: ri, fn: rv.Impulses[name]})
		}
	}
	return ex
}

func exploreBaseline(cm *san.CompiledModel, opts Options) (*Generator, exploreResult) {
	ex := newExplorer(cm, opts)
	gen := &Generator{cm: cm}
	res := exploreResult{}

	// Close the initial marking: it may itself be vanishing.
	initOutcomes, err := ex.closeVanishing(cm.InitialMarking(), 1, make([]float64, ex.nRewards))
	if err != nil {
		res.err = err
		return nil, res
	}
	gen.InitialImpulses = make([]float64, ex.nRewards)
	for _, o := range initOutcomes {
		si, ok := ex.intern(o.mark)
		if !ok {
			res.budgetExceeded = true
			return nil, res
		}
		gen.Initial = append(gen.Initial, StateProb{State: si, Prob: o.prob})
		for ri := range o.imp {
			gen.InitialImpulses[ri] += o.prob * o.imp[ri]
		}
	}

	for next := 0; next < len(ex.states); next++ {
		if err := ex.expand(next); err != nil {
			if nm, isNM := err.(nonMemorylessError); isNM {
				res.nonMemoryless = string(nm)
			} else {
				res.err = err
			}
			return nil, res
		}
		if ex.overBudget {
			res.budgetExceeded = true
			return nil, res
		}
	}

	gen.States = ex.states
	gen.Transitions = ex.transitions
	res.observedMax = ex.observedMax
	return gen, res
}

// nonMemorylessError classifies a reachable-state memorylessness failure so
// the certificate reports it as a refusal distinct from exploration errors.
type nonMemorylessError string

func (e nonMemorylessError) Error() string { return string(e) }

// overBudget is set by intern when the state budget is exhausted.
func (ex *explorer) intern(mark []int) (int, bool) {
	key := stateKey(mark)
	if si, ok := ex.index[key]; ok {
		return si, true
	}
	if len(ex.states) >= ex.maxStates {
		ex.overBudget = true
		return 0, false
	}
	si := len(ex.states)
	ex.index[key] = si
	ex.states = append(ex.states, append([]int(nil), mark...))
	ex.transitions = append(ex.transitions, nil)
	for pi, v := range mark {
		if v > ex.observedMax[pi] {
			ex.observedMax[pi] = v
		}
	}
	return si, true
}

// expand generates the outgoing edges of tangible state si.
func (ex *explorer) expand(si int) error {
	mark := ex.states[si]
	for _, a := range ex.timed {
		enabled, err := activityEnabled(a, markingVec(mark))
		if err != nil {
			return err
		}
		if !enabled {
			continue
		}
		rate, err := activityRate(a, markingVec(mark))
		if err != nil {
			return nonMemorylessError(err.Error())
		}
		if prev, seen := ex.firstRate[a.Index()]; seen {
			if prev != rate && !a.Reactivation() {
				return nonMemorylessError(fmt.Sprintf(
					"activity %q: marking-dependent rate (%g vs %g) without reactivation", a.Name(), rate, prev))
			}
		} else {
			ex.firstRate[a.Index()] = rate
		}
		if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			return fmt.Errorf("activity %q: rate %g at state %d", a.Name(), rate, si)
		}
		branches, err := ex.fireBranches(mark, a)
		if err != nil {
			return err
		}
		for _, b := range branches {
			outs, err := ex.closeVanishing(b.mark, b.prob, b.imp)
			if err != nil {
				return err
			}
			for _, o := range outs {
				ti, ok := ex.intern(o.mark)
				if !ok {
					return nil // budget flag set; caller stops
				}
				ex.transitions[si] = append(ex.transitions[si], Transition{
					From: si, To: ti, Activity: a.Name(),
					Rate:     rate * o.prob,
					Impulses: o.imp,
				})
			}
		}
	}
	return nil
}

// fireBranches fires activity a in marking mark, returning one branch per
// probabilistic case with positive probability. Each branch's marking has
// the full firing applied (input arcs, input-gate transforms, case outputs)
// and its impulse vector holds a's impulse rewards evaluated on the
// post-fire marking, exactly as the simulator earns them.
func (ex *explorer) fireBranches(mark []int, a *san.Activity) ([]outcome, error) {
	// Input side, shared by all cases.
	in := &guardedWriter{mark: append([]int(nil), mark...)}
	for _, arc := range a.InputArcs() {
		in.Add(arc.Place, -arc.Mult)
	}
	for _, g := range a.InputGates() {
		if g.Transform != nil {
			if err := runGate(a, g.Name, g.Transform, in); err != nil {
				return nil, err
			}
		}
	}
	if in.err != nil {
		return nil, fmt.Errorf("activity %q: %v", a.Name(), in.err)
	}

	cases := a.Cases()
	if len(cases) == 0 {
		// No cases: the simulator applies no output side.
		imp := make([]float64, ex.nRewards)
		if err := ex.addImpulses(a, in.mark, imp); err != nil {
			return nil, err
		}
		return []outcome{{mark: in.mark, prob: 1, imp: imp}}, nil
	}

	probs, err := caseProbs(a, in.mark)
	if err != nil {
		return nil, err
	}

	var branches []outcome
	for ci := range cases {
		p := probs[ci]
		if p <= 0 {
			continue
		}
		w := &guardedWriter{mark: append([]int(nil), in.mark...)}
		c := cases[ci]
		for _, arc := range c.OutputArcs {
			w.Add(arc.Place, arc.Mult)
		}
		for _, og := range c.OutputGates {
			if og.Transform != nil {
				if err := runGate(a, og.Name, og.Transform, w); err != nil {
					return nil, err
				}
			}
		}
		if w.err != nil {
			return nil, fmt.Errorf("activity %q: %v", a.Name(), w.err)
		}
		imp := make([]float64, ex.nRewards)
		if err := ex.addImpulses(a, w.mark, imp); err != nil {
			return nil, err
		}
		branches = append(branches, outcome{mark: w.mark, prob: p, imp: imp})
	}
	return branches, nil
}

// caseProbs computes the selection probability of every case of a at the
// post-input marking, replicating the simulator's defensive mass
// normalization (negative probabilities clamped, nil cases sharing the
// remaining mass, draws scaled by the total selectable mass).
func caseProbs(a *san.Activity, mark []int) ([]float64, error) {
	cases := a.Cases()
	if len(cases) == 1 {
		return []float64{1}, nil
	}
	return caseProbsInto(a, mark, make([]float64, len(cases)), make([]float64, len(cases)))
}

// caseProbsInto is caseProbs with caller-supplied scratch (the optimized
// explorer reuses masses and probs across activations; probs is also the
// return value). Both slices must have length len(a.Cases()) ≥ 2.
func caseProbsInto(a *san.Activity, mark []int, masses, probs []float64) ([]float64, error) {
	cases := a.Cases()
	var explicit float64
	nilCount := 0
	for i, c := range cases {
		if c.Probability == nil {
			nilCount++
			masses[i] = -1 // filled below
			continue
		}
		p, err := evalCaseProb(a, c, mark)
		if err != nil {
			return nil, err
		}
		masses[i] = math.Max(0, p)
		explicit += masses[i]
	}
	remainder := math.Max(0, 1-explicit)
	total := math.Max(1, explicit)
	if nilCount == 0 {
		total = explicit
	}
	clear(probs)
	if total <= 0 {
		// No selectable mass: the simulator's scan falls through to the last
		// case.
		probs[len(cases)-1] = 1
		return probs, nil
	}
	sum := 0.0
	for i := range cases {
		m := masses[i]
		if m < 0 {
			m = remainder / float64(nilCount)
		}
		p := m / total
		probs[i] += p
		sum += p
	}
	// Residual mass (total mass short of the draw range) falls through to
	// the last case in the simulator's scan.
	if sum < 1 {
		probs[len(cases)-1] += 1 - sum
	}
	return probs, nil
}

// evalCaseProb evaluates a case probability with panic recovery.
func evalCaseProb(a *san.Activity, c san.Case, mark []int) (p float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("activity %q: case probability panicked: %v", a.Name(), r)
		}
	}()
	return c.Probability(markingVec(mark)), nil
}

// addImpulses accumulates a's impulse rewards evaluated at the post-fire
// marking into imp.
func (ex *explorer) addImpulses(a *san.Activity, mark []int, imp []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("activity %q: impulse reward panicked: %v", a.Name(), r)
		}
	}()
	for _, ib := range ex.impulses[a.Index()] {
		imp[ib.rewardIndex] += ib.fn(markingVec(mark))
	}
	return nil
}

// closeVanishing eliminates vanishing markings starting from mark: it runs
// the simulator's instantaneous sweep (model declaration order, scan
// continuing past each firing, sweeps repeating while anything fired),
// branching on probabilistic cases, until every path settles in a tangible
// marking. prob and imp seed the path probability and impulse accumulator.
func (ex *explorer) closeVanishing(mark []int, prob float64, imp []float64) ([]outcome, error) {
	if len(ex.inst) == 0 {
		return []outcome{{mark: mark, prob: prob, imp: imp}}, nil
	}
	var out []outcome
	if err := ex.sweep(mark, prob, imp, 0, false, 0, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// sweep is one pass over the instantaneous activities from index idx;
// firedThisSweep carries whether anything fired earlier in the pass.
func (ex *explorer) sweep(mark []int, prob float64, imp []float64, idx int, firedThisSweep bool, sweeps int, out *[]outcome) error {
	for i := idx; i < len(ex.inst); i++ {
		a := ex.inst[i]
		enabled, err := activityEnabled(a, markingVec(mark))
		if err != nil {
			return err
		}
		if !enabled {
			continue
		}
		branches, err := ex.fireBranches(mark, a)
		if err != nil {
			return err
		}
		if len(branches) == 1 {
			b := branches[0]
			mark = b.mark
			imp = addVec(imp, b.imp, 1)
			prob *= b.prob
			firedThisSweep = true
			continue
		}
		for _, b := range branches {
			if err := ex.sweep(b.mark, prob*b.prob, addVec(append([]float64(nil), imp...), b.imp, 1), i+1, true, sweeps, out); err != nil {
				return err
			}
		}
		return nil
	}
	if !firedThisSweep {
		*out = append(*out, outcome{mark: mark, prob: prob, imp: imp})
		return nil
	}
	if sweeps+1 > maxVanishingSweeps {
		return fmt.Errorf("instantaneous closure did not stabilize within %d sweeps", maxVanishingSweeps)
	}
	return ex.sweep(mark, prob, imp, 0, false, sweeps+1, out)
}

// addVec returns dst with scale·src added in place.
func addVec(dst, src []float64, scale float64) []float64 {
	for i := range src {
		dst[i] += scale * src[i]
	}
	return dst
}

// activityEnabled evaluates the enabling test with panic recovery (gate
// predicates are arbitrary closures).
func activityEnabled(a *san.Activity, m san.MarkingReader) (enabled bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("activity %q: enabling predicate panicked: %v", a.Name(), r)
		}
	}()
	return a.Enabled(m), nil
}

// runGate runs a gate transform against the guarded writer with panic
// recovery.
func runGate(a *san.Activity, gate string, f san.GateFunc, w *guardedWriter) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("activity %q gate %q: transform panicked: %v", a.Name(), gate, r)
		}
	}()
	f(w)
	return nil
}

// guardedWriter is the exploration marking writer: it mirrors the
// simulator's negative-token panic as a recorded error, so an ill-formed
// firing becomes a structured exploration refusal instead of a crash.
type guardedWriter struct {
	mark []int
	err  error
}

func (w *guardedWriter) Tokens(p *san.Place) int { return w.mark[p.Index()] }

func (w *guardedWriter) SetTokens(p *san.Place, n int) {
	if n < 0 {
		if w.err == nil {
			w.err = fmt.Errorf("place %q driven to %d tokens", p.Name(), n)
		}
		return
	}
	w.mark[p.Index()] = n
}

func (w *guardedWriter) Add(p *san.Place, delta int) { w.SetTokens(p, w.Tokens(p)+delta) }
