package cluster

import (
	"strings"
	"testing"

	"repro/internal/san"
)

// TestPairLumpabilityDerivation: the Lumpable predicate is a projection of
// the derived verdict, and the verdict names why each non-memoryless pair
// stays flat.
func TestPairLumpabilityDerivation(t *testing.T) {
	expo := PairConfig{
		HWMTBFHours: 1440, HWRepair: mustExp(t, 24),
		SWMTBFHours: 1440, SWRepair: mustExp(t, 4),
		PropagationProb: 0.015,
	}
	cases := []struct {
		name     string
		cfg      func() PairConfig
		lumpable bool
		reason   string
	}{
		{"exponential", func() PairConfig { return expo }, true, ""},
		{"uniform-hw", func() PairConfig {
			c := expo
			c.HWRepair = mustUniform(t, 12, 36)
			return c
		}, false, san.ReasonNonExponential},
		{"uniform-sw", func() PairConfig {
			c := expo
			c.SWRepair = mustUniform(t, 2, 6)
			return c
		}, false, san.ReasonNonExponential},
		{"deterministic-sw", func() PairConfig {
			c := expo
			c.SWRepair = mustDet(t, 4)
			return c
		}, false, san.ReasonAgedState},
		{"spare-timer", func() PairConfig {
			c := expo
			c.Spare = true
			c.SpareActivationHours = 0.5
			return c
		}, false, san.ReasonAgedState},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			v := cfg.Lumpability()
			if v.Lumpable != tc.lumpable {
				t.Fatalf("Lumpable=%v, want %v (%+v)", v.Lumpable, tc.lumpable, v)
			}
			if cfg.Lumpable() != v.Lumpable {
				t.Fatal("Lumpable() predicate disagrees with verdict")
			}
			if tc.lumpable {
				if len(v.Reasons) != 0 {
					t.Fatalf("lumpable pair has reasons %v", v.Reasons)
				}
				return
			}
			found := false
			for _, r := range v.Reasons {
				if strings.HasPrefix(r, tc.reason) {
					found = true
				}
			}
			if !found {
				t.Fatalf("reasons %v missing %q", v.Reasons, tc.reason)
			}
		})
	}
}
