package abe

import (
	"strings"
	"testing"

	"repro/internal/san"
)

// compileStrict builds and strictly compiles a configuration, failing the
// test on any analysis defect.
func compileStrict(t *testing.T, cfg Config) (*san.CompiledModel, *ModelPlaces) {
	t.Helper()
	m := san.NewModel("abe")
	mp, err := Build(m, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cm, err := san.CompileStrict(m, mp.Rewards())
	if err != nil {
		t.Fatalf("CompileStrict: %v", err)
	}
	return cm, mp
}

// TestShippedConfigsAnalyzeClean: every configuration the experiments run
// must pass strict compilation — no vanishing loops, no dead activities —
// with zero unread-place advisories: the disks_down counter is read by the
// rare-event importance function outside the compiled model, and the build
// path declares that external reader so the analysis accounts for it.
func TestShippedConfigsAnalyzeClean(t *testing.T) {
	crews := ABE().WithLumping(true)
	crews.Storage.RepairCrews = 4
	cases := []struct {
		name string
		cfg  Config
	}{
		{"abe-flat", ABE()},
		{"abe-lumped", ABE().WithLumping(true)},
		{"abe-spare-lumped", ABE().WithSpareOSS(true).WithLumping(true)},
		{"abe-expo-lumped", ABE().WithExponentialForms().WithLumping(true)},
		{"abe-crews-lumped", crews},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cm, _ := compileStrict(t, tc.cfg)
			rep := san.Analyze(cm)
			if !rep.Clean {
				t.Fatalf("not clean:\n%s", rep.Render())
			}
			if len(rep.UnreadPlaces) != 0 {
				t.Fatalf("unexpected unread places %v (want none: external readers are declared)", rep.UnreadPlaces)
			}
			found := false
			for _, er := range rep.ExternalReaders {
				for _, p := range er.Places {
					if p == "cfs/ddn_units/disks_down" {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("disks_down not covered by a declared external reader: %+v", rep.ExternalReaders)
			}
			if len(rep.Families) == 0 {
				t.Fatal("no families declared by the build path")
			}
		})
	}
}

// TestAnalyzeFamiliesMatchBuildChoices: the families the builder declares
// into the model must agree with the build-path predicates — the Lumped bit
// of each declared family is exactly what Build chose for it.
func TestAnalyzeFamiliesMatchBuildChoices(t *testing.T) {
	for _, cfg := range []Config{
		ABE(),
		ABE().WithLumping(true),
		ABE().WithSpareOSS(true).WithLumping(true),
		ABE().WithExponentialForms().WithLumping(true),
	} {
		cm, _ := compileStrict(t, cfg)
		rep := san.Analyze(cm)
		byFamily := map[string]san.LumpabilityVerdict{}
		for _, f := range rep.Families {
			byFamily[f.Family] = f
		}
		s := cfg.storageConfig()
		checks := []struct {
			family string
			lumped bool
		}{
			{"cfs/oss/metadata", cfg.LumpsOSSPairs()},
			{"cfs/oss/scratch", cfg.LumpsOSSPairs()},
			{"cfs/ddn_units/controller_pairs", s.LumpsControllers()},
			{"cfs/ddn_units/tiers", s.LumpsTiers()},
			{"client/network", cfg.Lumped},
		}
		for _, c := range checks {
			f, ok := byFamily[c.family]
			if !ok {
				t.Fatalf("family %q not declared (have %v)", c.family, rep.Families)
			}
			if f.Lumped != c.lumped {
				t.Fatalf("family %q Lumped=%v, build predicate says %v (config %+v)", c.family, f.Lumped, c.lumped, cfg)
			}
			if f.Lumped && !f.Lumpable {
				t.Fatalf("family %q lumped but not lumpable", c.family)
			}
		}
	}
}

// TestLumpabilityVerdictsAgreeWithPredicates: the verdict view and the
// boolean predicates are projections of the same derivation and must agree,
// and a non-lumpable verdict must say why.
func TestLumpabilityVerdictsAgreeWithPredicates(t *testing.T) {
	crews := ABE().WithLumping(true)
	crews.Storage.RepairCrews = 4
	for _, cfg := range []Config{
		ABE(),
		ABE().WithLumping(true),
		ABE().WithSpareOSS(true).WithLumping(true),
		ABE().WithExponentialForms().WithLumping(true),
		Petascale().WithLumping(true),
		crews,
	} {
		vs := cfg.LumpabilityVerdicts()
		if len(vs) != 4 {
			t.Fatalf("want 4 verdicts, got %d", len(vs))
		}
		oss, ctrl, tier, transient := vs[0], vs[1], vs[2], vs[3]
		s := cfg.storageConfig()
		if oss.Lumped != cfg.LumpsOSSPairs() {
			t.Fatalf("oss verdict %v != LumpsOSSPairs %v", oss.Lumped, cfg.LumpsOSSPairs())
		}
		if ctrl.Lumped != s.LumpsControllers() {
			t.Fatalf("controller verdict %v != LumpsControllers %v", ctrl.Lumped, s.LumpsControllers())
		}
		if tier.Lumped != s.LumpsTiers() {
			t.Fatalf("tier verdict %v != LumpsTiers %v", tier.Lumped, s.LumpsTiers())
		}
		if transient.Lumped != cfg.Lumped {
			t.Fatalf("transient verdict %v != Lumped %v", transient.Lumped, cfg.Lumped)
		}
		if oss.Count != cfg.TotalOSSPairs() || tier.Count != s.TotalTiers() {
			t.Fatalf("verdict counts wrong: oss %d tier %d", oss.Count, tier.Count)
		}
		for _, v := range vs {
			if !v.Lumpable && len(v.Reasons) == 0 {
				t.Fatalf("family %q not lumpable but gives no reason", v.Family)
			}
			if v.Lumpable && len(v.Reasons) != 0 {
				t.Fatalf("family %q lumpable yet has reasons %v", v.Family, v.Reasons)
			}
		}
	}
}

// TestVerdictReasonsClassifyFailures pins the reason each shipped family
// fails lumping for, per failure class.
func TestVerdictReasonsClassifyFailures(t *testing.T) {
	// Default ABE: uniform OSS repairs (non-exponential), aged Weibull disks
	// and deterministic replacement (aged state), uniform controller repair.
	vs := ABE().WithLumping(true).LumpabilityVerdicts()
	oss, ctrl, tier := vs[0], vs[1], vs[2]
	if oss.Lumpable || !hasReasonPrefix(oss.Reasons, san.ReasonNonExponential) {
		t.Fatalf("oss reasons %v, want non-exponential", oss.Reasons)
	}
	if ctrl.Lumpable || !hasReasonPrefix(ctrl.Reasons, san.ReasonNonExponential) {
		t.Fatalf("controller reasons %v, want non-exponential", ctrl.Reasons)
	}
	if tier.Lumpable || !hasReasonPrefix(tier.Reasons, san.ReasonAgedState) {
		t.Fatalf("tier reasons %v, want aged state", tier.Reasons)
	}

	// Spare OSS adds the deterministic activation timer: aged state.
	vs = ABE().WithSpareOSS(true).WithExponentialForms().WithLumping(true).LumpabilityVerdicts()
	if vs[0].Lumpable || !hasReasonPrefix(vs[0].Reasons, san.ReasonAgedState) {
		t.Fatalf("spare oss reasons %v, want aged state", vs[0].Reasons)
	}

	// Shared crews couple the otherwise-exponential tiers: crew coupling.
	crews := ABE().WithExponentialForms().WithLumping(true)
	crews.Storage.RepairCrews = 4
	vs = crews.LumpabilityVerdicts()
	if vs[2].Lumpable || !hasReasonPrefix(vs[2].Reasons, san.ReasonCrewCoupling) {
		t.Fatalf("crew tier reasons %v, want crew coupling", vs[2].Reasons)
	}

	// Fully exponential forms: everything lumpable, no reasons.
	vs = ABE().WithExponentialForms().WithLumping(true).LumpabilityVerdicts()
	for _, v := range vs {
		if !v.Lumpable || !v.Lumped {
			t.Fatalf("exponential-forms family %q not lumped: %+v", v.Family, v)
		}
	}
}

func hasReasonPrefix(reasons []string, prefix string) bool {
	for _, r := range reasons {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}
