// Package report renders experiment results the way the paper presents them:
// as text tables (Tables 1-5) and as x/y series with confidence intervals
// (Figures 2-4). Output is plain text and CSV so results can be diffed and
// plotted without external dependencies.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row, converting every cell with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 6, 64)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (quoting cells that need
// it).
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(strconv.Quote(c))
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Point is one (x, y) sample with an optional confidence half-width.
type Point struct {
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	HalfWidth float64 `json:"half_width,omitempty"`
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is a set of series sharing axes, mirroring one paper figure.
type Figure struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// AddPoint appends a point to the named series, creating it if needed.
func (f *Figure) AddPoint(series string, p Point) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, p)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{p}})
}

// Render returns the figure as a text table with one row per x value and one
// column per series (the same rows the paper's figures plot).
func (f Figure) Render() string {
	table := Table{Title: f.Title, Headers: []string{f.XLabel}}
	for _, s := range f.Series {
		table.Headers = append(table.Headers, s.Name)
	}
	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', 6, 64)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.HalfWidth > 0 {
						cell = fmt.Sprintf("%.6g ±%.2g", p.Y, p.HalfWidth)
					} else {
						cell = strconv.FormatFloat(p.Y, 'g', 6, 64)
					}
					break
				}
			}
			row = append(row, cell)
		}
		table.Rows = append(table.Rows, row)
	}
	return table.Render()
}

// SeriesY returns the y values of the named series in x order, or nil when
// the series does not exist.
func (f Figure) SeriesY(name string) []float64 {
	for _, s := range f.Series {
		if s.Name == name {
			ys := make([]float64, len(s.Points))
			for i, p := range s.Points {
				ys[i] = p.Y
			}
			return ys
		}
	}
	return nil
}
