package san

import (
	"fmt"
	"strings"

	"repro/internal/dist"
)

// This file is the read-only structural surface of the model layer: the
// accessors a structural analyzer (internal/statespace) needs to derive the
// incidence matrix and exhaustively explore the reachable state graph of a
// compiled model, plus the Certificate type such an analyzer produces. The
// model builder API stays write-oriented and the simulator keeps its private
// fast paths; everything here exposes existing structure without copying the
// hot-path representation.

// Index returns the place's position in the model's marking vector. Marking
// vectors produced by structural analysis (state-space exploration) are
// indexed by it.
func (p *Place) Index() int { return p.index }

// Index returns the activity's position in the model's activity list.
func (a *Activity) Index() int { return a.index }

// Reactivation reports whether the activity resamples its delay whenever a
// dependent place changes while it stays enabled (see SetReactivation).
func (a *Activity) Reactivation() bool { return a.reactivate }

// InputArcs returns the activity's input arcs. The slice is the model's own
// storage and must not be mutated.
func (a *Activity) InputArcs() []Arc { return a.inputArcs }

// InputGates returns the activity's input gates. The slice is the model's
// own storage and must not be mutated.
func (a *Activity) InputGates() []*InputGate { return a.inputGates }

// Cases returns the activity's probabilistic cases in declaration order. The
// slice is the model's own storage and must not be mutated.
func (a *Activity) Cases() []Case { return a.cases }

// DelayAt evaluates the activity's delay function against marking m and
// returns the resulting distribution (nil for instantaneous activities).
func (a *Activity) DelayAt(m MarkingReader) dist.Distribution {
	if a.delay == nil {
		return nil
	}
	return a.delay(m)
}

// FixedDelay returns the marking-independent delay distribution the activity
// was built with (AddTimedActivity), or nil when the delay is re-evaluated
// from the marking (AddTimedActivityFunc) or the activity is instantaneous.
// Static passes that need the distribution object itself — not a sample —
// start here.
func (a *Activity) FixedDelay() dist.Distribution { return a.fixedDelay }

// Enabled reports whether the activity is enabled in marking m: every input
// arc satisfied and every input-gate predicate true. This is exactly the
// simulator's enabling test.
func (a *Activity) Enabled(m MarkingReader) bool { return a.enabled(m) }

// InitialMarking returns a copy of the compiled model's initial marking, in
// place-index order.
func (cm *CompiledModel) InitialMarking() []int {
	return append([]int(nil), cm.initial...)
}

// Instantaneous returns the compiled model's instantaneous activities in
// model declaration order — the order the simulator sweeps them in when it
// eliminates vanishing markings. The slice is the compiled model's own
// storage and must not be mutated.
func (cm *CompiledModel) Instantaneous() []*Activity { return cm.instantaneous }

// ---------------------------------------------------------------------------
// External readers
// ---------------------------------------------------------------------------

// ExternalReader names a consumer outside the compiled model (a rare-event
// importance function, a monitoring hook) together with the places it reads.
// Analyze treats declared external reads like in-model reads, so a place kept
// solely for such a consumer is not flagged as unread state.
type ExternalReader struct {
	// Name identifies the consumer (e.g. "rareevent importance").
	Name string `json:"name"`
	// Places are the names of the places the consumer reads.
	Places []string `json:"places"`
}

// DeclareExternalReader records that the named consumer outside the compiled
// model reads the given places. Model builders declare the readers their
// exported importance/monitor hooks use; Analyze folds the declarations into
// its read set so shipped configurations analyze without advisory noise.
func (m *Model) DeclareExternalReader(name string, places ...*Place) {
	m.externalReads = append(m.externalReads, externalRead{name: name, places: places})
}

// externalRead is one DeclareExternalReader record.
type externalRead struct {
	name   string
	places []*Place
}

// ---------------------------------------------------------------------------
// Structural certificates
// ---------------------------------------------------------------------------

// Refusal reason prefixes of a Certificate. Every refusal string starts with
// one of these, so reports and tests can classify refusals without parsing
// free text.
const (
	// RefusalNonMemoryless: a timed activity's delay is not exponential (or
	// its rate is marking-dependent without reactivation), so the model is
	// not a CTMC and uniformization would be silently wrong.
	RefusalNonMemoryless = "non-memoryless"
	// RefusalVanishingLoop: the instantaneous-loop analysis (san.Analyze)
	// cannot rule out a vanishing-marking loop, so on-the-fly elimination of
	// vanishing markings has no termination guarantee.
	RefusalVanishingLoop = "vanishing-loop"
	// RefusalUnbounded: exploration exceeded its state budget and at least
	// one place carries no P-invariant bound — the state space may well be
	// infinite.
	RefusalUnbounded = "unbounded"
	// RefusalBudget: an analysis budget (state count, invariant tableau) was
	// exceeded even though no place is provably unbounded; the model is too
	// large to solve numerically, not ill-formed.
	RefusalBudget = "budget"
	// RefusalExploration: exploration failed outright (negative marking, a
	// panicking gate closure, an instantaneous closure that never
	// stabilized).
	RefusalExploration = "exploration"
	// RefusalNonExpandable: the phase-type expansion pass (ExpandPhases)
	// found a non-memoryless delay it cannot rewrite into an exact chain of
	// exponential phases — a distribution with no finite phase-type form
	// (uniform window, deterministic activation, Weibull wear-out,
	// non-integer Gamma shape) or an activity whose structure defeats the
	// expansion's exactness argument (reactivation, input gates, an input
	// place other activities consume or gates write).
	RefusalNonExpandable = "non-expandable"
	// RefusalNonFittable: the approximate phase-type fitting pass
	// (FitPhases) could not adopt a surrogate for a non-memoryless delay —
	// no supported surrogate meets the caller's tolerance, the distribution
	// exposes no closed-form moments or CDF to certify against, or the
	// activity's structure defeats the surrogate realization (a chain needs
	// the same stable-enabling argument as exact expansion).
	RefusalNonFittable = "non-fittable"
)

// Proof kinds of a PlaceBound.
const (
	// ProofPInvariant: the bound follows from a nonnegative place invariant
	// y (y·C = 0): y·M = y·M0 in every reachable marking M, so
	// M(p) <= (y·M0)/y_p.
	ProofPInvariant = "p-invariant"
	// ProofExploration: the bound is the maximum token count observed over
	// the exhaustively explored reachable state space.
	ProofExploration = "exploration"
)

// PlaceBound is a per-place boundedness certificate: an upper bound on the
// place's token count over the reachable state space, with the proof that
// establishes it.
type PlaceBound struct {
	// Place is the place name.
	Place string `json:"place"`
	// Bound is the proven upper bound on the token count.
	Bound int `json:"bound"`
	// Proof is ProofPInvariant or ProofExploration.
	Proof string `json:"proof"`
	// Invariant renders the invariant vector evidence ("2·a + b = 5") when
	// Proof is ProofPInvariant.
	Invariant string `json:"invariant,omitempty"`
}

// Certificate is the structural certificate a numerical solver requires
// before it may run: the model's timed behavior is memoryless, its
// instantaneous behavior provably vanishes, and its reachable state space is
// finite — or a structured refusal explaining which precondition failed. It
// extends the lumpability-verdict machinery from behavioral advisories to
// machine-checked solver preconditions.
type Certificate struct {
	// Memoryless reports that every timed activity has an exponential delay
	// at every reachable marking (and marking-dependent rates reactivate).
	Memoryless bool `json:"memoryless"`
	// VanishingFree reports that the instantaneous-loop analysis found no
	// vanishing-marking loop, so eliminating vanishing markings terminates.
	VanishingFree bool `json:"vanishing_free"`
	// Bounded reports that the reachable state space was exhaustively
	// explored within budget, with every place's bound recorded.
	Bounded bool `json:"bounded"`
	// States and Transitions are the size of the generated CTMC (set only
	// when Bounded).
	States      int `json:"states,omitempty"`
	Transitions int `json:"transitions,omitempty"`
	// PInvariants and TInvariants count the invariants found over the
	// rationals (zero when the invariant tableau exceeded its budget).
	PInvariants int `json:"p_invariants,omitempty"`
	TInvariants int `json:"t_invariants,omitempty"`
	// PlaceBounds holds the per-place boundedness certificates (set only
	// when Bounded).
	PlaceBounds []PlaceBound `json:"place_bounds,omitempty"`
	// Refusals lists the structured reasons the certificate was refused,
	// each prefixed with one of the Refusal* constants. Empty iff Certified.
	Refusals []string `json:"refusals,omitempty"`
	// Expansions holds the phase-type expansion evidence when the certified
	// model is the image of ExpandPhases: one string per rewritten activity,
	// recording the original distribution, the phase count, and the stage
	// rates. Empty when the model certified as built.
	Expansions []string `json:"expansions,omitempty"`
	// Approximations holds the certified fit evidence when the model is the
	// image of FitPhases: one entry per fitted activity, recording the
	// original distribution, the adopted surrogate, and the proven distance
	// bound with its metric. Non-empty means the analytic answer is
	// approximate — reports must label it so, never as exact.
	Approximations []FitEvidence `json:"approximations,omitempty"`
}

// Certified reports whether every solver precondition holds.
func (c Certificate) Certified() bool { return c.Memoryless && c.VanishingFree && c.Bounded }

// Summary renders the certificate in one line, for text reports.
func (c Certificate) Summary() string {
	if c.Certified() {
		expanded := ""
		if n := len(c.Expansions); n > 0 {
			expanded = fmt.Sprintf(" (after phase expansion of %d activities)", n)
		}
		if n := len(c.Approximations); n > 0 {
			expanded += fmt.Sprintf(" (approximate: %d fitted surrogates with certified bounds)", n)
		}
		return fmt.Sprintf("certified%s: %d states, %d transitions, %d P-invariants, %d T-invariants",
			expanded, c.States, c.Transitions, c.PInvariants, c.TInvariants)
	}
	if len(c.Refusals) == 0 {
		return "refused"
	}
	return "refused: " + strings.Join(c.Refusals, "; ")
}
