package san

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// This file is the certified phase-type expansion pass: a static
// model-to-model transformation that rewrites non-exponential delays with an
// exact finite phase-type form — Erlang (integer-shape Gamma) and
// sums of exponential stages (hypoexponential) — into chains of per-phase
// exponential activities through fresh phase places, so the structural
// certificate tier (internal/statespace) can prove and solve models the
// memoryless precondition used to refuse outright.
//
// The exactness argument, per expanded activity A with stage rates
// λ_1..λ_k:
//
//   - A chain activity fires per stage: stage 1 is enabled exactly when A's
//     input arcs are satisfied and no phase token exists; each completion
//     moves the single phase token one place down the chain; the final stage
//     is A itself, with its delay replaced by Exponential(λ_k) and one extra
//     input arc from the last phase place. Total time from chain start to
//     A's completion is the sum of k independent exponentials — precisely
//     A's original Erlang/hypoexponential delay.
//   - Tokens stay in A's input places for the whole chain and are consumed,
//     as before, only when A itself completes; A keeps its name, input arcs,
//     gatelessness, and cases. Rate rewards (which read places), impulse
//     rewards (which are keyed by activity name), case probabilities, and
//     output transforms therefore observe markings and completions that are
//     distributionally identical to the original model's.
//   - The rewrite is exact only if A's enabling cannot be withdrawn while
//     the chain runs (the original would cancel and later resample the whole
//     delay; a half-walked chain would not). ExpandPhases proves this
//     statically: A must not reactivate, must have no input gates, and no
//     other activity may consume from — and no gate transform may write —
//     any of A's input places. Other activities' output arcs only add
//     tokens, which cannot disable an input arc. Anything the proof does not
//     cover is refused with a classified RefusalNonExpandable reason, never
//     expanded approximately.
//
// The pass appends its evidence (original distribution → phase count →
// stage rates) to the solver certificate via Certificate.Expansions, and
// Verify re-checks the proof obligation that every activity it touched ended
// up memoryless.

// ErrExpansionUnsound reports a violated expansion proof obligation: an
// activity the pass claims to have expanded does not have a memoryless
// delay. It indicates a bug in the pass itself, never a property of the
// input model.
var ErrExpansionUnsound = fmt.Errorf("san: phase expansion proof obligation violated")

// maxExpansionPhases bounds the chain length one activity may expand into;
// beyond it the state-space blow-up defeats the point of solving the model
// numerically, so the pass refuses instead (classified, like every refusal).
const maxExpansionPhases = 64

// integerShapeTol is the tolerance for recognizing an integer Gamma shape;
// shapes come from calibrated literals (2, 3, ...) so anything further from
// an integer than this is a genuinely non-Erlang Gamma.
const integerShapeTol = 1e-9

// ExpansionReport is the expansion certificate ExpandPhases emits: evidence
// for every rewritten activity and a classified refusal for every
// non-memoryless activity it could not rewrite exactly. Activities that were
// already memoryless appear in neither list.
type ExpansionReport struct {
	// Expanded holds one evidence string per rewritten activity: the
	// original distribution, the phase count, and the stage rates. Callers
	// append it to san.Certificate.Expansions.
	Expanded []string `json:"expanded,omitempty"`
	// Refusals holds one RefusalNonExpandable-prefixed reason per
	// non-memoryless activity the pass had to leave in place.
	Refusals []string `json:"refusals,omitempty"`
	// touched names every activity the pass created or mutated, for the
	// Verify proof obligation.
	touched []string
}

// Touched returns the names of every activity the pass created or rewrote,
// in deterministic (declaration) order.
func (r *ExpansionReport) Touched() []string {
	return append([]string(nil), r.touched...)
}

// Verify is the analyzer rule behind the expansion's proof obligation: every
// activity the pass created or rewrote must exist in m and carry a fixed
// memoryless delay. ExpandPhases runs it before returning, and callers that
// hand the expanded model to a solver may re-run it as a defense-in-depth
// check (statespace.Certify additionally re-proves memorylessness over every
// reachable marking, so an unsound expansion cannot reach the solver even if
// this rule were wrong).
func (r *ExpansionReport) Verify(m *Model) error {
	for _, name := range r.touched {
		a := m.Activity(name)
		if a == nil {
			return fmt.Errorf("%w: expanded activity %q missing from model", ErrExpansionUnsound, name)
		}
		if reason := DelayLumpability(fmt.Sprintf("activity %q", name), a.fixedDelay); reason != "" {
			return fmt.Errorf("%w: %s", ErrExpansionUnsound, reason)
		}
	}
	return nil
}

// PhaseExpandable reports whether d has an exact finite representation as a
// chain of exponential phases, and with how many. Erlang (integer-shape
// Gamma) expands into shape stages; a Sum expands into the concatenation of
// its parts' stages when every part expands; exponentials (including the
// shape-1 Weibull and shape-1 Gamma) are a single stage. Uniform windows,
// deterministic timers, Weibull wear-out, and non-integer Gamma shapes have
// no exact finite phase-type form.
func PhaseExpandable(d dist.Distribution) (int, bool) {
	rates, ok := phaseRates(d)
	return len(rates), ok
}

// phaseRates flattens d into its exact exponential stage rates, in the order
// the stages elapse.
func phaseRates(d dist.Distribution) ([]float64, bool) {
	switch v := d.(type) {
	case dist.Exponential:
		return []float64{v.Rate()}, true
	case dist.Weibull:
		if v.Shape() == 1 {
			return []float64{1 / v.Mean()}, true
		}
		return nil, false
	case dist.Gamma:
		k := math.Round(v.Shape())
		if k < 1 || math.Abs(v.Shape()-k) > integerShapeTol {
			return nil, false
		}
		rates := make([]float64, int(k))
		for i := range rates {
			rates[i] = 1 / v.Scale()
		}
		return rates, true
	case dist.Sum:
		var rates []float64
		for _, part := range v.Parts() {
			pr, ok := phaseRates(part)
			if !ok {
				return nil, false
			}
			rates = append(rates, pr...)
		}
		return rates, true
	default:
		return nil, false
	}
}

// staticMarking adapts a token vector to MarkingReader for evaluating
// marking-dependent closures at a fixed marking.
type staticMarking []int

func (sm staticMarking) Tokens(p *Place) int {
	if p == nil || p.index < 0 || p.index >= len(sm) {
		return 0
	}
	return sm[p.index]
}

// ExpandPhases rewrites, in place, every timed activity of m whose delay has
// an exact finite phase-type form (Erlang, sum of exponential stages) into a
// chain of per-phase exponential activities, and reports classified
// refusals for every non-memoryless delay it had to leave alone. It must run
// on the model builder before Compile; the returned report carries the
// per-activity evidence to append to the solver certificate.
//
// Every activity classifies via DelayLumpability first: memoryless delays
// are untouched, and non-memoryless delays either expand exactly or produce
// a RefusalNonExpandable reason naming the distribution or the structural
// precondition that failed. The pass never changes the distribution of any
// observable quantity — see the exactness argument at the top of this file.
func ExpandPhases(m *Model) (*ExpansionReport, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("san: expand phases: %w", err)
	}
	report := &ExpansionReport{}

	// Static write/consume discovery for the stable-enabling proof: which
	// places does any gate transform write, and how many activities consume
	// (input-arc) each place. Probing runs every transform against synthetic
	// markings with panic recovery, exactly like Analyze.
	ps := newProbeSet(len(m.places))
	bases := baseMarkings(m.InitialMarking())
	for _, a := range m.activities {
		for _, g := range a.inputGates {
			if g.Transform != nil {
				fn := g.Transform
				ps.probe(bases, func(pm *probeMarking) { fn(pm) })
			}
		}
		for _, c := range a.cases {
			for _, og := range c.OutputGates {
				if og.Transform != nil {
					fn := og.Transform
					ps.probe(bases, func(pm *probeMarking) { fn(pm) })
				}
			}
		}
	}
	consumers := make([]int, len(m.places))
	for _, a := range m.activities {
		for _, arc := range a.inputArcs {
			consumers[arc.Place.index]++
		}
	}

	refuse := func(a *Activity, format string, args ...any) {
		report.Refusals = append(report.Refusals, fmt.Sprintf(
			"%s: activity %q: %s", RefusalNonExpandable, a.name, fmt.Sprintf(format, args...)))
	}

	// Snapshot the activity list: the rewrite appends stage activities that
	// must not themselves be revisited.
	original := append([]*Activity(nil), m.activities...)
	for _, a := range original {
		if a.kind != Timed {
			continue
		}
		d := a.fixedDelay
		if d == nil {
			// Marking-dependent delay (AddTimedActivityFunc): nothing static
			// to expand. Memoryless-at-initial-marking delays (the lumped
			// aggregate activities) are the certificate tier's business;
			// anything else is refused here with the classification.
			if reason := delayLumpabilityAt(a, m.InitialMarking()); reason != "" {
				refuse(a, "marking-dependent delay is not statically expandable (%s)", reason)
			}
			continue
		}
		if DelayLumpability("delay", d) == "" {
			continue // already memoryless
		}
		rates, ok := phaseRates(d)
		if !ok {
			refuse(a, "%s has no exact finite phase-type form", dist.Describe(d))
			continue
		}
		if len(rates) > maxExpansionPhases {
			refuse(a, "%s needs %d phases, beyond the %d-phase budget",
				dist.Describe(d), len(rates), maxExpansionPhases)
			continue
		}
		// Structural preconditions for exactness (see the argument above).
		// A single-stage rewrite swaps the delay for a literally identical
		// exponential, so stability of enabling is irrelevant there.
		if len(rates) > 1 {
			if a.reactivate {
				refuse(a, "reactivation resamples the whole %s on marking changes; a phase chain cannot", dist.Describe(d))
				continue
			}
			if len(a.inputGates) > 0 {
				refuse(a, "input-gate enabling cannot be proven stable across the phase chain")
				continue
			}
			if ps.opaque && len(a.inputArcs) > 0 {
				refuse(a, "a gate transform is unanalyzable, so enabling stability cannot be proven")
				continue
			}
			unstable := ""
			for _, arc := range a.inputArcs {
				if consumers[arc.Place.index] > 1 {
					unstable = fmt.Sprintf("input place %q has other consumers", arc.Place.name)
					break
				}
				if !ps.opaque && ps.writes[arc.Place.index] {
					unstable = fmt.Sprintf("input place %q is written by a gate transform", arc.Place.name)
					break
				}
			}
			if unstable != "" {
				refuse(a, "%s, so enabling stability cannot be proven", unstable)
				continue
			}
		}
		if err := expandActivity(m, a, rates); err != nil {
			return nil, err
		}
		report.Expanded = append(report.Expanded, fmt.Sprintf(
			"activity %q: %s expanded into %d exponential phase(s) at rates %s",
			a.name, dist.Describe(d), len(rates), formatRates(rates)))
		report.touched = append(report.touched, a.name)
		for i := 1; i < len(rates); i++ {
			report.touched = append(report.touched, phaseName(a.name, i))
		}
	}
	if err := report.Verify(m); err != nil {
		return nil, err
	}
	return report, nil
}

// delayLumpabilityAt classifies a marking-dependent delay at a fixed
// marking, converting evaluation panics into a non-memoryless verdict.
func delayLumpabilityAt(a *Activity, marking []int) (reason string) {
	defer func() {
		if recover() != nil {
			reason = fmt.Sprintf("%s: delay evaluation panicked at the initial marking", ReasonNonExponential)
		}
	}()
	return DelayLumpability("delay at the initial marking", a.DelayAt(staticMarking(marking)))
}

// expandActivity performs the chain rewrite for one activity: fresh phase
// places, one gate-guarded first stage, pass-through middle stages, and the
// original activity — delay swapped for the final exponential stage — as the
// chain's last link.
func expandActivity(m *Model, a *Activity, rates []float64) error {
	stageDelay := func(rate float64) (dist.Distribution, error) {
		e, err := dist.NewExponentialFromRate(rate)
		if err != nil {
			return nil, fmt.Errorf("san: expand phases: activity %q: %w", a.name, err)
		}
		return e, nil
	}
	k := len(rates)
	last, err := stageDelay(rates[k-1])
	if err != nil {
		return err
	}
	if k == 1 {
		a.delay = func(MarkingReader) dist.Distribution { return last }
		a.fixedDelay = last
		return nil
	}
	phases := make([]*Place, k-1)
	for i := range phases {
		p, err := m.AddPlaceErr(phaseName(a.name, i+1), 0)
		if err != nil {
			return fmt.Errorf("san: expand phases: %w", err)
		}
		phases[i] = p
	}
	// Stage 1 starts the chain exactly when the original activity would have
	// become enabled: all input arcs satisfied (checked, not consumed — the
	// tokens stay put until the final stage completes) and no phase pending.
	arcs := append([]Arc(nil), a.inputArcs...)
	reads := make([]*Place, 0, len(arcs)+len(phases))
	for _, arc := range arcs {
		reads = append(reads, arc.Place)
	}
	reads = append(reads, phases...)
	first, err := stageDelay(rates[0])
	if err != nil {
		return err
	}
	m.AddTimedActivity(phaseName(a.name, 1), first).
		AddInputGate(&InputGate{
			Name:  phaseName(a.name, 1) + "/ig",
			Reads: reads,
			Enabled: func(mr MarkingReader) bool {
				for _, arc := range arcs {
					if mr.Tokens(arc.Place) < arc.Mult {
						return false
					}
				}
				for _, p := range phases {
					if mr.Tokens(p) > 0 {
						return false
					}
				}
				return true
			},
		}).
		AddOutputArc(phases[0], 1)
	for i := 2; i < k; i++ {
		mid, err := stageDelay(rates[i-1])
		if err != nil {
			return err
		}
		m.AddTimedActivity(phaseName(a.name, i), mid).
			AddInputArc(phases[i-2], 1).
			AddOutputArc(phases[i-1], 1)
	}
	a.AddInputArc(phases[k-2], 1)
	a.delay = func(MarkingReader) dist.Distribution { return last }
	a.fixedDelay = last
	return nil
}

// ExpandPhases rewrites every transition of a replica class whose delay has
// an exact finite phase-type form into a chain of exponential stage
// transitions through fresh local phase states, so the class passes
// ReplicateLumped's memoryless check and the population stays counted —
// phases become local states, and a petascale point keeps costing per state
// class rather than per replica.
//
// Exactness mirrors the activity-level pass, with the races made explicit:
// a replica that starts a chain leaves the From state, so every competing
// transition out of From is replicated from each phase state at its original
// rate — competitors are exponential (anything else fails the class), so
// walking the chain does not age them, and a competitor firing mid-chain
// discards the phase progress exactly as the original class discards the
// pending phase-type clock when the replica leaves From. The transition's
// Effect fires on the final stage only, preserving shared-place side-effect
// semantics. The returned evidence strings parallel the model-level report.
//
// Two phase-type transitions out of the same From state would race two
// chains against each other and are refused (RefusalNonExpandable inside the
// returned error) rather than expanded approximately.
func (c ReplicaClass) ExpandPhases() (ReplicaClass, []string, error) {
	out := ReplicaClass{
		States:  append([]string(nil), c.States...),
		Initial: c.Initial,
	}
	// First pass: locate the phase-type transitions and refuse ambiguous
	// races before rewriting anything. Refusal order matters for the
	// messages: two chains out of one state is the structural problem, so it
	// is detected before either chain complains about the other as a
	// competitor.
	expandable := make([]bool, len(c.Transitions))
	stages := make([][]float64, len(c.Transitions))
	for i, tr := range c.Transitions {
		if _, ok := tr.Delay.(dist.Exponential); ok {
			continue
		}
		rates, ok := phaseRates(tr.Delay)
		if !ok {
			return ReplicaClass{}, nil, fmt.Errorf("%w: %s: transition %q: %s has no exact finite phase-type form",
				ErrNonExponential, RefusalNonExpandable, tr.Name, dist.Describe(tr.Delay))
		}
		if len(rates) > maxExpansionPhases {
			return ReplicaClass{}, nil, fmt.Errorf("%w: %s: transition %q: %s needs %d phases, beyond the %d-phase budget",
				ErrNonExponential, RefusalNonExpandable, tr.Name, dist.Describe(tr.Delay), len(rates), maxExpansionPhases)
		}
		expandable[i] = true
		stages[i] = rates
	}
	chainFrom := make(map[string]string, len(c.Transitions))
	for i, tr := range c.Transitions {
		if !expandable[i] || len(stages[i]) <= 1 {
			continue
		}
		if prev, dup := chainFrom[tr.From]; dup {
			return ReplicaClass{}, nil, fmt.Errorf("%w: %s: transitions %q and %q both need phase chains out of state %q",
				ErrNonExponential, RefusalNonExpandable, prev, tr.Name, tr.From)
		}
		chainFrom[tr.From] = tr.Name
	}
	// At this point every competitor of a chain is memoryless once the
	// rewrite runs: the first loop refused everything without a finite phase
	// form, the chain map refused a second multi-stage transition out of the
	// same state, and single-stage expandables are swapped for their
	// exponential before they are copied — so the race argument in the
	// doc comment holds for every replicated competitor.
	var evidence []string
	for i, tr := range c.Transitions {
		if !expandable[i] {
			out.Transitions = append(out.Transitions, tr)
			continue
		}
		rates := stages[i]
		k := len(rates)
		stage := func(rate float64) (dist.Distribution, error) {
			e, err := dist.NewExponentialFromRate(rate)
			if err != nil {
				return nil, fmt.Errorf("san: expand phases: transition %q: %w", tr.Name, err)
			}
			return e, nil
		}
		last, err := stage(rates[k-1])
		if err != nil {
			return ReplicaClass{}, nil, err
		}
		if k == 1 {
			tr.Delay = last
			out.Transitions = append(out.Transitions, tr)
			evidence = append(evidence, fmt.Sprintf(
				"transition %q (%s -> %s): %s expanded into 1 exponential phase(s) at rates %s",
				tr.Name, tr.From, tr.To, dist.Describe(c.Transitions[i].Delay), formatRates(rates)))
			continue
		}
		phaseStates := make([]string, k-1)
		for j := range phaseStates {
			phaseStates[j] = phaseName(tr.Name, j+1)
			out.States = append(out.States, phaseStates[j])
		}
		from := tr.From
		for j := 0; j < k; j++ {
			d, err := stage(rates[j])
			if err != nil {
				return ReplicaClass{}, nil, err
			}
			st := ReplicaTransition{From: from, Delay: d}
			if j == k-1 {
				// The final stage keeps the transition's name, destination,
				// and side effect, so LumpedPlaces.ActivityName and shared
				// counters behave exactly as for the unexpanded class.
				st.Name, st.To, st.Effect = tr.Name, tr.To, tr.Effect
			} else {
				st.Name, st.To = phaseStates[j], phaseStates[j]
				from = phaseStates[j]
			}
			out.Transitions = append(out.Transitions, st)
		}
		// Replicate every competitor out of From from each phase state,
		// preserving the original race (memorylessness makes the per-phase
		// copies one clock). A single-stage expandable competitor is copied
		// as the exponential its own rewrite swaps in.
		for j, o := range c.Transitions {
			if j == i || o.From != tr.From {
				continue
			}
			od := o.Delay
			if expandable[j] && len(stages[j]) == 1 {
				e, err := dist.NewExponentialFromRate(stages[j][0])
				if err != nil {
					return ReplicaClass{}, nil, fmt.Errorf("san: expand phases: transition %q: %w", o.Name, err)
				}
				od = e
			}
			for _, ph := range phaseStates {
				out.Transitions = append(out.Transitions, ReplicaTransition{
					Name:   o.Name + "@" + ph,
					From:   ph,
					To:     o.To,
					Delay:  od,
					Effect: o.Effect,
				})
			}
		}
		evidence = append(evidence, fmt.Sprintf(
			"transition %q (%s -> %s): %s expanded into %d exponential phase(s) at rates %s",
			tr.Name, tr.From, tr.To, dist.Describe(tr.Delay), k, formatRates(rates)))
	}
	if err := out.Validate(); err != nil {
		return ReplicaClass{}, nil, fmt.Errorf("%w: expanded class invalid: %v", ErrExpansionUnsound, err)
	}
	return out, evidence, nil
}

// phaseName names the i-th stage activity (and its feeding phase place) of
// an expanded activity.
func phaseName(activity string, i int) string {
	return fmt.Sprintf("%s/phase%d", activity, i)
}

// formatRates renders stage rates compactly for evidence strings.
func formatRates(rates []float64) string {
	out := ""
	for i, r := range rates {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%g/h", r)
	}
	return "[" + out + "]"
}
