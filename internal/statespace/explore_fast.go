package statespace

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/san"
)

// This file is the production exploration engine: the same BFS with
// on-the-fly vanishing elimination as explore.go, rebuilt around an interned
// packed-marking index (intern.go) and level-parallel frontier expansion.
//
// Expanding a state is a pure function of its marking — enabling predicates,
// rates, gate transforms, case probabilities, and impulse rewards read only
// the marking and the immutable compiled model — so a BFS level can be
// expanded by any number of workers. Determinism is preserved by separating
// expansion from commitment: workers only record *proto* activations and
// edges (packed successor markings, probabilities, impulse vectors) into
// per-chunk buffers; a single merge pass then walks the chunks in state-index
// order and performs everything order-sensitive — rate-consistency checks,
// state interning (which assigns indices), transition assembly, budget
// accounting, and error selection. The merge sees exactly the event sequence
// the sequential reference explorer produces, so state numbering, transition
// order, refusal text, and budget behavior are identical at every
// parallelism, including parallelism 1.
//
// The chunk size is a fixed constant, not derived from the worker count, so
// chunk boundaries never depend on scheduling.

// exploreChunkSize is the number of frontier states per parallel expansion
// task.
const exploreChunkSize = 256

// exploreParallelMin is the frontier size below which a level is expanded
// inline: spawning workers for a handful of states costs more than it saves.
const exploreParallelMin = 64

// timedRef caches per-activity facts the hot loop would otherwise re-derive
// per state: whether the delay is marking-independent (its rate then
// classifies once, here), whether the activity carries impulse bindings, and
// whether case selection is trivial.
type timedRef struct {
	a       *san.Activity
	hasImp  bool
	fixed   bool    // marking-independent delay: rate classified once
	rate    float64 // valid when fixed and rateErr == ""
	rateErr string  // non-empty: classification failure, raised when first enabled
}

// protoAct is one enabled activity recorded by a worker: the merge re-checks
// rate consistency and validity in state order before committing its edges.
type protoAct struct {
	tIdx    int32 // index into fastExplorer.timedRefs
	nEdges  int32
	rate    float64
	rateErr string
}

// protoEdge is one successor recorded by a worker: the packed marking (a view
// into the chunk arena), its hash, the total branch probability (case times
// vanishing path), and the impulse vector (nil when the firing earns none —
// impulse-free edges accumulate +0.0 either way).
type protoEdge struct {
	off, n int32
	hash   uint64
	prob   float64
	imp    []float64
}

// chunkOut is the expansion record of one chunk of frontier states.
type chunkOut struct {
	lo, hi  int
	actEnd  []int32 // per state: end index into acts (start = previous end)
	stopErr []error // per state: error that halted its expansion, if any
	acts    []protoAct
	edges   []protoEdge
	arena   []byte
}

type fastExplorer struct {
	*explorer // shared semantic core: vanishing closure, impulse bindings

	timedRefs []timedRef
	par       int
	idx       *markIndex

	// First-seen rate pin per activity index (the array form of the
	// reference explorer's firstRate map).
	seenRate   []bool
	pinnedRate []float64

	packBuf []byte
}

// exploreFast runs the interned, level-parallel BFS. Its result — generator,
// refusals, budget flags — is identical to exploreBaseline's.
func exploreFast(cm *san.CompiledModel, opts Options) (*Generator, exploreResult) {
	ex := newExplorer(cm, opts)
	model := cm.Model()
	fx := &fastExplorer{
		explorer:   ex,
		par:        opts.Parallelism,
		idx:        newMarkIndex(),
		seenRate:   make([]bool, model.NumActivities()),
		pinnedRate: make([]float64, model.NumActivities()),
	}
	initial := cm.InitialMarking()
	fx.timedRefs = make([]timedRef, len(ex.timed))
	for i, a := range ex.timed {
		tr := timedRef{a: a, hasImp: len(ex.impulses[a.Index()]) > 0}
		if a.FixedDelay() != nil {
			tr.fixed = true
			if r, err := activityRate(a, markingVec(initial)); err != nil {
				tr.rateErr = err.Error()
			} else {
				tr.rate = r
			}
		}
		fx.timedRefs[i] = tr
	}

	gen := &Generator{cm: cm}
	res := exploreResult{}

	// Close the initial marking: it may itself be vanishing.
	initOutcomes, err := ex.closeVanishing(initial, 1, make([]float64, ex.nRewards))
	if err != nil {
		res.err = err
		return nil, res
	}
	gen.InitialImpulses = make([]float64, ex.nRewards)
	for _, o := range initOutcomes {
		si, ok := fx.intern(o.mark)
		if !ok {
			res.budgetExceeded = true
			return nil, res
		}
		gen.Initial = append(gen.Initial, StateProb{State: si, Prob: o.prob})
		for ri := range o.imp {
			gen.InitialImpulses[ri] += o.prob * o.imp[ri]
		}
	}

	if err := fx.run(); err != nil {
		if nm, isNM := err.(nonMemorylessError); isNM {
			res.nonMemoryless = string(nm)
		} else {
			res.err = err
		}
		return nil, res
	}
	if fx.overBudget {
		res.budgetExceeded = true
		return nil, res
	}

	gen.States = fx.states
	gen.Transitions = fx.transitions
	res.observedMax = fx.observedMax
	return gen, res
}

// run drives the level-synchronized BFS: each pass expands the states
// appended since the previous pass, in parallel when the frontier is large
// enough, and commits the results in state-index order.
func (fx *fastExplorer) run() error {
	par := fx.par
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	exp := newExpander(fx)
	for lo := 0; lo < len(fx.states); {
		hi := len(fx.states)
		if par > 1 && hi-lo >= exploreParallelMin {
			if err := fx.runLevelParallel(lo, hi, par); err != nil {
				return err
			}
		} else {
			for si := lo; si < hi; si++ {
				exp.reset(si, si+1)
				exp.expandState(fx.states[si])
				if err := fx.merge(&exp.res); err != nil {
					return err
				}
				if fx.overBudget {
					return nil
				}
			}
		}
		if fx.overBudget {
			return nil
		}
		lo = hi
	}
	return nil
}

// runLevelParallel expands frontier states [lo,hi) with par workers pulling
// fixed-size chunks off an atomic counter, then merges the chunks in order.
// Workers never touch shared explorer state, so the schedule cannot affect
// the result.
func (fx *fastExplorer) runLevelParallel(lo, hi, par int) error {
	nChunks := (hi - lo + exploreChunkSize - 1) / exploreChunkSize
	if par > nChunks {
		par = nChunks
	}
	results := make([]*expander, nChunks)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				clo := lo + c*exploreChunkSize
				chi := clo + exploreChunkSize
				if chi > hi {
					chi = hi
				}
				e := newExpander(fx)
				e.reset(clo, chi)
				for si := clo; si < chi; si++ {
					e.expandState(fx.states[si])
				}
				results[c] = e
			}
		}()
	}
	wg.Wait()
	for _, e := range results {
		if err := fx.merge(&e.res); err != nil {
			return err
		}
		if fx.overBudget {
			return nil
		}
	}
	return nil
}

// intern interns an unpacked marking (initial-closure path).
func (fx *fastExplorer) intern(mark []int) (int, bool) {
	fx.packBuf = packMarking(fx.packBuf[:0], mark)
	return fx.internPacked(fx.packBuf, hashBytes(fx.packBuf))
}

// internPacked resolves a packed marking to its state index, assigning the
// next index (and decoding the marking into the state table) on first sight.
// It returns ok=false with the budget flag set when the state cap is hit —
// the same stop the reference explorer performs.
func (fx *fastExplorer) internPacked(packed []byte, h uint64) (int, bool) {
	if si, ok := fx.idx.lookup(packed, h); ok {
		return si, true
	}
	if len(fx.states) >= fx.maxStates {
		fx.overBudget = true
		return 0, false
	}
	si := fx.idx.insert(packed, h)
	mark := unpackMarking(packed, fx.nPlaces)
	fx.states = append(fx.states, mark)
	fx.transitions = append(fx.transitions, nil)
	for pi, v := range mark {
		if v > fx.observedMax[pi] {
			fx.observedMax[pi] = v
		}
	}
	return si, true
}

// merge commits one chunk: it replays the recorded activations and edges in
// state-index order, performing the order-sensitive work — rate pinning and
// validity, interning, transition assembly, budget stops, and error raising —
// in exactly the sequence the reference explorer would.
func (fx *fastExplorer) merge(res *chunkOut) error {
	actCursor, edgeCursor := 0, 0
	for k, si := 0, res.lo; si < res.hi; k, si = k+1, si+1 {
		for end := int(res.actEnd[k]); actCursor < end; actCursor++ {
			act := &res.acts[actCursor]
			tr := &fx.timedRefs[act.tIdx]
			a := tr.a
			if act.rateErr != "" {
				return nonMemorylessError(act.rateErr)
			}
			ai := a.Index()
			if fx.seenRate[ai] {
				if fx.pinnedRate[ai] != act.rate && !a.Reactivation() {
					return nonMemorylessError(fmt.Sprintf(
						"activity %q: marking-dependent rate (%g vs %g) without reactivation", a.Name(), act.rate, fx.pinnedRate[ai]))
				}
			} else {
				fx.seenRate[ai] = true
				fx.pinnedRate[ai] = act.rate
			}
			if act.rate <= 0 || math.IsInf(act.rate, 0) || math.IsNaN(act.rate) {
				return fmt.Errorf("activity %q: rate %g at state %d", a.Name(), act.rate, si)
			}
			for n := int32(0); n < act.nEdges; n++ {
				pe := &res.edges[edgeCursor]
				edgeCursor++
				ti, ok := fx.internPacked(res.arena[pe.off:pe.off+pe.n], pe.hash)
				if !ok {
					return nil // budget flag set; caller stops
				}
				fx.transitions[si] = append(fx.transitions[si], Transition{
					From: si, To: ti, Activity: a.Name(),
					Rate:     act.rate * pe.prob,
					Impulses: pe.imp,
				})
			}
		}
		if err := res.stopErr[k]; err != nil {
			return err
		}
	}
	return nil
}

// expander is one worker's expansion state: the chunk output under
// construction plus reusable scratch (marking copies, case-probability
// buffers) so steady-state expansion allocates only on interning misses and
// impulse-carrying edges.
type expander struct {
	fx  *fastExplorer
	res chunkOut

	inMark  []int
	outMark []int
	gw      guardedWriter
	masses  []float64
	probs   []float64
}

func newExpander(fx *fastExplorer) *expander {
	return &expander{fx: fx}
}

func (e *expander) reset(lo, hi int) {
	e.res.lo, e.res.hi = lo, hi
	e.res.actEnd = e.res.actEnd[:0]
	e.res.stopErr = e.res.stopErr[:0]
	e.res.acts = e.res.acts[:0]
	e.res.edges = e.res.edges[:0]
	e.res.arena = e.res.arena[:0]
}

// expandState records the proto activations and edges of one marking. Errors
// that halt a state's expansion are recorded positionally (stopErr) rather
// than raised — the merge raises them in state order.
func (e *expander) expandState(mark []int) {
	fx := e.fx
	var stopErr error
	for ti := range fx.timedRefs {
		tr := &fx.timedRefs[ti]
		enabled, err := activityEnabled(tr.a, markingVec(mark))
		if err != nil {
			stopErr = err
			break
		}
		if !enabled {
			continue
		}
		rate, rateErr := tr.rate, tr.rateErr
		if !tr.fixed {
			if r, err := activityRate(tr.a, markingVec(mark)); err != nil {
				rate, rateErr = 0, err.Error()
			} else {
				rate, rateErr = r, ""
			}
		}
		e.res.acts = append(e.res.acts, protoAct{tIdx: int32(ti), rate: rate, rateErr: rateErr})
		if rateErr != "" {
			break
		}
		if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			// Recorded with no edges: the merge stops at this activation
			// with the invalid-rate error, mirroring the reference
			// explorer's stop before any firing.
			break
		}
		nEdges, err := e.fire(mark, tr)
		if err != nil {
			stopErr = err
			break
		}
		e.res.acts[len(e.res.acts)-1].nEdges = nEdges
	}
	e.res.actEnd = append(e.res.actEnd, int32(len(e.res.acts)))
	e.res.stopErr = append(e.res.stopErr, stopErr)
}

// fire records the successor edges of firing tr.a in mark. Models with
// instantaneous activities route through the reference fireBranches and
// vanishing closure (their read-only helpers are safe under concurrent
// workers); the instantaneous-free hot path fires on reusable scratch
// markings instead.
func (e *expander) fire(mark []int, tr *timedRef) (int32, error) {
	a := tr.a
	if len(e.fx.inst) > 0 {
		branches, err := e.fx.explorer.fireBranches(mark, a)
		if err != nil {
			return 0, err
		}
		var n int32
		for _, b := range branches {
			outs, err := e.fx.explorer.closeVanishing(b.mark, b.prob, b.imp)
			if err != nil {
				return 0, err
			}
			for _, o := range outs {
				e.pushEdge(o.mark, o.prob, o.imp)
				n++
			}
		}
		return n, nil
	}

	// Input side, shared by all cases: arcs then gate transforms on a
	// scratch copy of the marking.
	e.inMark = append(e.inMark[:0], mark...)
	e.gw = guardedWriter{mark: e.inMark}
	for _, arc := range a.InputArcs() {
		e.gw.Add(arc.Place, -arc.Mult)
	}
	for _, g := range a.InputGates() {
		if g.Transform != nil {
			if err := runGate(a, g.Name, g.Transform, &e.gw); err != nil {
				return 0, err
			}
		}
	}
	if e.gw.err != nil {
		return 0, fmt.Errorf("activity %q: %v", a.Name(), e.gw.err)
	}

	cases := a.Cases()
	if len(cases) == 0 {
		// No cases: the simulator applies no output side.
		imp, err := e.impulses(tr, e.inMark)
		if err != nil {
			return 0, err
		}
		e.pushEdge(e.inMark, 1, imp)
		return 1, nil
	}
	if len(cases) == 1 {
		return e.fireCase(a, tr, cases[0], 1)
	}
	if cap(e.masses) < len(cases) {
		e.masses = make([]float64, len(cases))
		e.probs = make([]float64, len(cases))
	}
	probs, err := caseProbsInto(a, e.inMark, e.masses[:len(cases)], e.probs[:len(cases)])
	if err != nil {
		return 0, err
	}
	var n int32
	for ci := range cases {
		if probs[ci] <= 0 {
			continue
		}
		k, err := e.fireCase(a, tr, cases[ci], probs[ci])
		if err != nil {
			return 0, err
		}
		n += k
	}
	return n, nil
}

// fireCase applies one probabilistic case's output side on scratch and
// records the edge.
func (e *expander) fireCase(a *san.Activity, tr *timedRef, c san.Case, p float64) (int32, error) {
	e.outMark = append(e.outMark[:0], e.inMark...)
	e.gw = guardedWriter{mark: e.outMark}
	for _, arc := range c.OutputArcs {
		e.gw.Add(arc.Place, arc.Mult)
	}
	for _, og := range c.OutputGates {
		if og.Transform != nil {
			if err := runGate(a, og.Name, og.Transform, &e.gw); err != nil {
				return 0, err
			}
		}
	}
	if e.gw.err != nil {
		return 0, fmt.Errorf("activity %q: %v", a.Name(), e.gw.err)
	}
	imp, err := e.impulses(tr, e.outMark)
	if err != nil {
		return 0, err
	}
	e.pushEdge(e.outMark, p, imp)
	return 1, nil
}

// impulses evaluates tr.a's impulse rewards on the post-fire marking, or
// returns nil when the activity has no bindings (a nil impulse vector and an
// all-zero one contribute identically to every reward integral).
func (e *expander) impulses(tr *timedRef, mark []int) ([]float64, error) {
	if !tr.hasImp {
		return nil, nil
	}
	imp := make([]float64, e.fx.nRewards)
	if err := e.fx.explorer.addImpulses(tr.a, mark, imp); err != nil {
		return nil, err
	}
	return imp, nil
}

// pushEdge packs the successor marking into the chunk arena and records the
// proto edge.
func (e *expander) pushEdge(mark []int, prob float64, imp []float64) {
	off := int32(len(e.res.arena))
	e.res.arena = packMarking(e.res.arena, mark)
	packed := e.res.arena[off:]
	e.res.edges = append(e.res.edges, protoEdge{
		off: off, n: int32(len(packed)), hash: hashBytes(packed), prob: prob, imp: imp,
	})
}
