package san

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// twoStateClass returns the canonical fail/repair replica class: up replicas
// fail at 1/mttf, down replicas repair at 1/mttr, and a shared counter
// place tracks the failed population.
func twoStateClass(t testing.TB, mttf, mttr float64, downCounter *Place) ReplicaClass {
	t.Helper()
	return ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{
				Name: "fail", From: "up", To: "down", Delay: mustExp(t, mttf),
				Effect: func(mw MarkingWriter) { mw.Add(downCounter, 1) },
			},
			{
				Name: "repair", From: "down", To: "up", Delay: mustExp(t, mttr),
				Effect: func(mw MarkingWriter) { mw.Add(downCounter, -1) },
			},
		},
	}
}

func TestReplicateLumpedEdgeCases(t *testing.T) {
	freshClass := func(m *Model) ReplicaClass {
		counter := m.AddPlace("counter", 0)
		return twoStateClass(t, 100, 10, counter)
	}

	// n <= 0 is rejected rather than silently building an empty population.
	for _, n := range []int{0, -3} {
		m := NewModel("lump-n")
		if _, err := ReplicateLumped(m, "c", n, freshClass(m)); !errors.Is(err, ErrNotLumpable) {
			t.Errorf("ReplicateLumped(n=%d) error = %v, want ErrNotLumpable", n, err)
		}
	}

	// Duplicate prefixes collide on the counting-place names.
	m := NewModel("lump-dup")
	class := freshClass(m)
	if _, err := ReplicateLumped(m, "c", 4, class); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplicateLumped(m, "c", 4, class); !errors.Is(err, ErrDuplicatePlace) {
		t.Errorf("duplicate prefix error = %v, want ErrDuplicatePlace", err)
	}

	// A non-exponential transition must error, not silently mis-lump: the
	// count x rate aggregation is only exact for memoryless delays.
	uni, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewModel("lump-nonexp")
	bad := freshClass(m2)
	bad.Transitions[1].Delay = uni
	if _, err := ReplicateLumped(m2, "c", 4, bad); !errors.Is(err, ErrNonExponential) {
		t.Errorf("uniform delay error = %v, want ErrNonExponential", err)
	}
	bad.Transitions[1].Delay = nil
	if _, err := ReplicateLumped(NewModel("lump-nil"), "c", 4, bad); !errors.Is(err, ErrNonExponential) {
		t.Error("nil delay accepted")
	}

	// Structural defects are ErrNotLumpable.
	structural := map[string]func(*ReplicaClass){
		"no states":           func(c *ReplicaClass) { c.States = nil },
		"duplicate state":     func(c *ReplicaClass) { c.States = []string{"up", "up"} },
		"empty state name":    func(c *ReplicaClass) { c.States = []string{"up", ""} },
		"unknown initial":     func(c *ReplicaClass) { c.Initial = "nope" },
		"unknown from":        func(c *ReplicaClass) { c.Transitions[0].From = "nope" },
		"unknown to":          func(c *ReplicaClass) { c.Transitions[0].To = "nope" },
		"self loop":           func(c *ReplicaClass) { c.Transitions[0].To = c.Transitions[0].From },
		"empty transition":    func(c *ReplicaClass) { c.Transitions[0].Name = "" },
		"duplicate transname": func(c *ReplicaClass) { c.Transitions[1].Name = c.Transitions[0].Name },
	}
	for name, mutate := range structural {
		mm := NewModel("lump-" + name)
		cc := freshClass(mm)
		mutate(&cc)
		if _, err := ReplicateLumped(mm, "c", 4, cc); !errors.Is(err, ErrNotLumpable) {
			t.Errorf("%s: error = %v, want ErrNotLumpable", name, err)
		}
	}
}

func TestReplicateEdgeCases(t *testing.T) {
	// Flat Replicate: negative counts are rejected, zero is an explicit
	// no-op, and duplicate prefixes surface the builder's place collision.
	if err := Replicate(NewModel("r"), "c", -1, nil); err == nil {
		t.Error("negative replicate count accepted")
	}
	m := NewModel("r0")
	called := false
	err := Replicate(m, "c", 0, func(*Model, string, int) error { called = true; return nil })
	if err != nil || called {
		t.Errorf("Replicate(n=0) = %v (builder called: %v), want silent no-op", err, called)
	}
	build := func(m *Model, prefix string, _ int) error {
		_, err := m.AddPlaceErr(Qualify(prefix, "up"), 1)
		return err
	}
	if err := Replicate(m, "c", 2, build); err != nil {
		t.Fatal(err)
	}
	if err := Replicate(m, "c", 2, build); !errors.Is(err, ErrDuplicatePlace) {
		t.Errorf("duplicate prefix error = %v, want ErrDuplicatePlace", err)
	}
}

// TestLumpedMatchesFlatPopulation pins the lumping argument numerically: a
// population of n independent exponential fail/repair components, built flat
// (n submodels) and lumped (one two-state class), must agree on the
// time-averaged failed count — with each other within pooled confidence
// intervals and with the closed-form n x MTTR/(MTTF+MTTR) — while the
// lumped model stays O(1) in size.
func TestLumpedMatchesFlatPopulation(t *testing.T) {
	const (
		n    = 40
		mttf = 100.0
		mttr = 10.0
	)
	opts := Options{Mission: 2000, Replications: 32, Seed: 5}

	flat := NewModel("flat")
	flatDown := flat.AddPlace("down_count", 0)
	err := Replicate(flat, "comp", n, func(m *Model, prefix string, _ int) error {
		up, err := m.AddPlaceErr(Qualify(prefix, "up"), 1)
		if err != nil {
			return err
		}
		down, err := m.AddPlaceErr(Qualify(prefix, "down"), 0)
		if err != nil {
			return err
		}
		m.AddTimedActivity(Qualify(prefix, "fail"), mustExp(t, mttf)).
			AddInputArc(up, 1).AddOutputArc(down, 1).AddOutputArc(flatDown, 1)
		m.AddTimedActivity(Qualify(prefix, "repair"), mustExp(t, mttr)).
			AddInputArc(down, 1).AddInputArc(flatDown, 1).AddOutputArc(up, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	lumped := NewModel("lumped")
	lumpedDown := lumped.AddPlace("down_count", 0)
	lp, err := ReplicateLumped(lumped, "comp", n, twoStateClass(t, mttf, mttr, lumpedDown))
	if err != nil {
		t.Fatal(err)
	}
	if lp.N != n || lp.State("up") == nil || lp.State("down") == nil {
		t.Fatalf("lumped places incomplete: %+v", lp)
	}
	if lp.State("up").Initial() != n || lp.State("down").Initial() != 0 {
		t.Errorf("initial counts = %d/%d, want %d/0", lp.State("up").Initial(), lp.State("down").Initial(), n)
	}
	if name := lp.ActivityName("fail"); lumped.Activity(name) == nil {
		t.Errorf("fail activity %q missing", name)
	}

	// The lumped model is O(states + transitions), not O(n).
	if got := lumped.Stats(); got.Places != 3 || got.Activities != 2 {
		t.Errorf("lumped model stats = %+v, want 3 places / 2 activities", got)
	}
	if got := flat.Stats(); got.Places != 2*n+1 || got.Activities != 2*n {
		t.Errorf("flat model stats = %+v, want %d places / %d activities", got, 2*n+1, 2*n)
	}

	reward := func(p *Place) []RewardVariable { return []RewardVariable{TokenTimeAverage("down", p)} }
	flatStudy, err := RunReplications(flat, reward(flatDown), opts)
	if err != nil {
		t.Fatal(err)
	}
	lumpedStudy, err := RunReplications(lumped, reward(lumpedDown), opts)
	if err != nil {
		t.Fatal(err)
	}

	want := n * mttr / (mttf + mttr)
	flatCI, err := flatStudy.Interval("down")
	if err != nil {
		t.Fatal(err)
	}
	lumpedCI, err := lumpedStudy.Interval("down")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flatCI.Mean-want) > 3*flatCI.HalfWidth {
		t.Errorf("flat mean down = %v +/- %v, want ~%v", flatCI.Mean, flatCI.HalfWidth, want)
	}
	if math.Abs(lumpedCI.Mean-want) > 3*lumpedCI.HalfWidth {
		t.Errorf("lumped mean down = %v +/- %v, want ~%v", lumpedCI.Mean, lumpedCI.HalfWidth, want)
	}
	// Pooled-CI agreement between the two representations.
	pooled := math.Sqrt(flatCI.HalfWidth*flatCI.HalfWidth + lumpedCI.HalfWidth*lumpedCI.HalfWidth)
	if math.Abs(flatCI.Mean-lumpedCI.Mean) > 3*pooled {
		t.Errorf("flat %v vs lumped %v differ beyond pooled interval %v", flatCI.Mean, lumpedCI.Mean, pooled)
	}
}

// TestCompileSharedAcrossSimulators verifies the compile-layer contract: one
// CompiledModel backs several simulators, and a compiled-model simulator is
// bit-identical to the compatibility-shim path with the same stream.
func TestCompileSharedAcrossSimulators(t *testing.T) {
	m, up := buildFailRepair(t, 50, 5)
	rewards := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	cm, err := Compile(m, rewards)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Model() != m || len(cm.Rewards()) != 1 {
		t.Error("compiled model accessors broken")
	}
	if got := cm.Stats(); got.Places != 2 || got.Activities != 2 {
		t.Errorf("stats = %+v", got)
	}
	if _, err := cm.NewSimulator(nil); err == nil {
		t.Error("nil stream accepted")
	}

	simA, err := cm.NewSimulator(rng.NewStream(77, "shared"))
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSimulator(m, rewards, rng.NewStream(77, "shared"))
	if err != nil {
		t.Fatal(err)
	}
	if simB.Compiled() == cm {
		t.Error("shim unexpectedly reused the compiled model")
	}
	resA, err := simA.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := simB.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Rewards["avail"] != resB.Rewards["avail"] || resA.Events != resB.Events {
		t.Errorf("compiled vs shim runs differ: %+v vs %+v", resA, resB)
	}

	// RunReplicationsCompiled matches RunReplications on the same options.
	opts := Options{Mission: 1000, Replications: 8, Seed: 3}
	direct, err := RunReplications(m, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaCM, err := RunReplicationsCompiled(cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Mean("avail") != viaCM.Mean("avail") || direct.TotalEvents != viaCM.TotalEvents {
		t.Errorf("compiled study differs: %v/%d vs %v/%d",
			direct.Mean("avail"), direct.TotalEvents, viaCM.Mean("avail"), viaCM.TotalEvents)
	}
	if _, err := RunReplicationsCompiled(cm, Options{Replications: 1}); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := Compile(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
}
