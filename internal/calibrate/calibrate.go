// Package calibrate closes the paper's measured-data loop: it turns the
// failure-log analysis of Section 3.3 (package loganalysis) into simulation
// inputs for the stochastic model of Section 4 (package abe), so the model
// parameters the evaluation runs with are *derived from logs* instead of
// hard-coded Table 5 constants.
//
// Calibrate runs the full analysis pipeline over a pair of SAN/compute logs
// and materializes three things:
//
//   - fitted distributions: the censored Weibull survival fit becomes a
//     dist.Weibull disk-lifetime distribution, and the raw per-outage
//     durations and per-incident disk repair lags become dist.Empirical
//     samples, ready to plug into SAN activity delays;
//   - a calibrated abe.Config: disk shape/MTBF (Table 4), job arrival rate
//     and failure fractions (Table 3), and the shared-outage rate and
//     duration (Table 1) override the corresponding base-configuration
//     fields, while parameters the logs cannot identify (RAID geometry, OSS
//     pair counts, controller rates) are inherited from the base;
//   - a provenance record: every derived parameter carries its value, unit,
//     source table, and derivation formula, and the whole record serializes
//     into the "calibration" section of the paper_full JSON artifact.
//
// The calibration also maps back onto the synthetic log generator
// (LogConfig), which is what makes the loop testable end to end: generate
// logs -> calibrate -> regenerate logs under the calibrated parameters ->
// re-derive rates, and the re-derived rates must match the inputs within
// statistical tolerance.
package calibrate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/abe"
	"repro/internal/dist"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/report"
)

// Source tables of derived parameters (the paper's Section 3.3 artifacts).
const (
	SourceOutages  = "Table 1 (outage analysis)"
	SourceMounts   = "Table 2 (mount failures)"
	SourceJobs     = "Table 3 (job statistics)"
	SourceSurvival = "Table 4 (disk survival fit)"
	SourceBase     = "base configuration (not log-identifiable)"
)

// ErrNoLogs reports a calibration invoked without logs.
var ErrNoLogs = errors.New("calibrate: nil logs")

// Parameter is one derived model parameter with its provenance: where the
// number came from (source table) and how it was computed (detail).
type Parameter struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Source string  `json:"source"`
	Detail string  `json:"detail,omitempty"`
}

// Calibration is the full result of calibrating the stochastic model from a
// pair of failure logs.
type Calibration struct {
	// Population is the monitored disk population the survival analysis ran
	// with.
	Population int
	// Rates are the scalar model parameters extracted from the logs.
	Rates loganalysis.DerivedRates
	// Outages, Jobs, Disks, and Mounts are the underlying per-table analyses.
	Outages loganalysis.OutageReport
	Jobs    loganalysis.JobStats
	Disks   loganalysis.DiskReport
	Mounts  []loganalysis.MountFailureDay
	// DiskLifetime is the fitted Weibull disk-lifetime distribution
	// (survival fit shape, scale matched to the fitted MTBF).
	DiskLifetime dist.Weibull
	// OutageDuration interpolates the raw per-outage durations.
	OutageDuration dist.Empirical
	// DiskRepair interpolates the observed failure-to-replacement lags; it is
	// only populated when the log contains replacement records (HasDiskRepair).
	DiskRepair    dist.Empirical
	HasDiskRepair bool
	// Config is the calibrated composed-model configuration.
	Config abe.Config
	// Provenance records every derived parameter and its source table, in
	// derivation order.
	Provenance []Parameter
}

// Calibrate runs the full log-analysis pipeline and calibrates the ABE base
// configuration from it. population is the monitored disk population (480
// for ABE's scratch partition).
func Calibrate(logs *loggen.Logs, population int) (*Calibration, error) {
	return CalibrateWith(logs, population, abe.ABE())
}

// CalibrateWith calibrates the given base configuration from the logs. The
// base supplies every parameter the logs cannot identify (RAID geometry, OSS
// pair counts and repair ranges, controller rates, jobs killed per transient
// event); all log-identifiable parameters are overridden by derived values.
func CalibrateWith(logs *loggen.Logs, population int, base abe.Config) (*Calibration, error) {
	if logs == nil {
		return nil, ErrNoLogs
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: base configuration: %w", err)
	}
	cal := &Calibration{Population: population}
	var err error
	if cal.Outages, err = loganalysis.AnalyzeOutages(logs.SAN); err != nil {
		return nil, fmt.Errorf("calibrate: outage analysis: %w", err)
	}
	if cal.Jobs, err = loganalysis.AnalyzeJobs(logs.Compute); err != nil {
		return nil, fmt.Errorf("calibrate: job analysis: %w", err)
	}
	if cal.Disks, err = loganalysis.AnalyzeDisks(logs.SAN, population); err != nil {
		return nil, fmt.Errorf("calibrate: disk analysis: %w", err)
	}
	// Mount failures only inform the synthetic-log round trip (LogConfig);
	// their absence is not an error for model calibration, so a failed
	// analysis leaves the zero report rather than aborting.
	if mounts, merr := loganalysis.AnalyzeMountFailures(logs.Compute); merr == nil {
		cal.Mounts = mounts
	}
	cal.Rates = loganalysis.DeriveRatesFromReports(cal.Outages, cal.Jobs, cal.Disks)

	// Fitted distributions: survival fit -> Weibull lifetime, measured
	// samples -> empirical outage-duration and repair-time distributions.
	cal.DiskLifetime, err = dist.NewWeibullFromMTBF(cal.Disks.Fit.Shape, cal.Disks.Fit.MTBF())
	if err != nil {
		return nil, fmt.Errorf("calibrate: disk lifetime from fit: %w", err)
	}
	cal.OutageDuration, err = dist.NewEmpirical(cal.Outages.OutageDurations())
	if err != nil {
		return nil, fmt.Errorf("calibrate: outage durations: %w", err)
	}
	if len(cal.Disks.RepairHours) > 0 {
		cal.DiskRepair, err = dist.NewEmpirical(cal.Disks.RepairHours)
		if err != nil {
			return nil, fmt.Errorf("calibrate: disk repair lags: %w", err)
		}
		cal.HasDiskRepair = true
	}

	if err := cal.applyToConfig(base); err != nil {
		return nil, err
	}
	return cal, nil
}

// record appends one provenance entry and returns the value, so derivations
// read as assignments.
func (c *Calibration) record(name string, value float64, unit, source, detail string) float64 {
	c.Provenance = append(c.Provenance, Parameter{Name: name, Value: value, Unit: unit, Source: source, Detail: detail})
	return value
}

// applyToConfig overrides every log-identifiable field of the base
// configuration with its derived value, recording provenance as it goes.
func (c *Calibration) applyToConfig(base abe.Config) error {
	cfg := base
	cfg.Name = base.Name + " (log-calibrated)"
	rates := c.Rates

	// Table 4: disk lifetime process.
	cfg.Storage.Disk.ShapeBeta = c.record("disk_weibull_shape", rates.DiskWeibullShape,
		"", SourceSurvival, "censored Weibull MLE shape")
	cfg.Storage.Disk.MTBFHours = c.record("disk_mtbf_hours", rates.DiskMTBFHours,
		"h", SourceSurvival, "scale*Gamma(1+1/shape) of the fitted Weibull")
	c.record("disk_afr", dist.HoursPerYear/rates.DiskMTBFHours,
		"fraction/year", SourceSurvival, "8760/MTBF, implied by the fit")
	if c.HasDiskRepair {
		cfg.Storage.Disk.ReplaceHours = c.record("disk_replace_hours", c.DiskRepair.Mean(),
			"h", SourceSurvival, fmt.Sprintf("mean of %d observed failure-to-replacement lags", c.DiskRepair.N()))
	}

	// Table 3: workload process.
	cfg.Workload.JobsPerHour = c.record("jobs_per_hour", rates.JobsPerHour,
		"1/h", SourceJobs, "submitted jobs over the compute-log window")
	c.record("transient_job_failure_fraction", rates.TransientJobFailureFraction,
		"", SourceJobs, "transient failures / submitted jobs")
	c.record("other_job_failure_fraction", rates.OtherJobFailureFraction,
		"", SourceJobs, "file-system/other failures / submitted jobs")
	// The model expresses transient damage as a Poisson event source killing
	// JobsKilledPerTransient running jobs per event; invert that calibration
	// constant to get the event rate the observed per-job fraction implies.
	// A log with no transient failures (or a base with a zero kill constant)
	// cannot identify the rate, so the base value stands — overriding with 0
	// or Inf would fail abe.Config validation or poison the JSON report.
	if rate := rates.TransientJobFailureFraction * rates.JobsPerHour; rate > 0 && base.Workload.JobsKilledPerTransient > 0 {
		cfg.Workload.TransientEventsPerHour = c.record("transient_events_per_hour",
			rate/base.Workload.JobsKilledPerTransient,
			"1/h", SourceJobs,
			fmt.Sprintf("transient fraction * job rate / %g jobs killed per event (base constant)", base.Workload.JobsKilledPerTransient))
	}
	// Jobs failing for file-system reasons are the ones exposed to CFS
	// outages: fraction_other ~= (1 - availability) * exposure.
	if down := 1 - rates.CFSAvailability; down > 0 {
		exposure := rates.OtherJobFailureFraction / down
		if exposure > 1 {
			exposure = 1
		}
		cfg.Workload.JobCFSExposure = c.record("job_cfs_exposure", exposure,
			"", SourceJobs, "other-failure fraction / (1 - CFS availability), clamped to [0,1]")
	}

	// Table 1: shared-outage process. The composed model's OSS pairs and
	// storage stay ~always-up at ABE scale, so the log's CFS-visible outages
	// are attributed to the shared infrastructure component (an explicit
	// modeling assumption, recorded here).
	c.record("cfs_availability", rates.CFSAvailability, "", SourceOutages, "1 - coalesced downtime / window")
	c.record("outages_per_month", rates.OutagesPerMonth, "1/month", SourceOutages, "outage count over the SAN-log window")
	cfg.Infrastructure.FabricMTBFHours = c.record("fabric_mtbf_hours", 720/rates.OutagesPerMonth,
		"h", SourceOutages, "720 / outages per month; all CFS-visible outages attributed to the shared fabric")
	mean := c.record("mean_outage_hours", rates.MeanOutageHours,
		"h", SourceOutages, "mean of raw (uncoalesced) per-outage durations")
	// The model draws fabric repairs from Uniform(lo, hi); match the
	// empirical mean exactly and the spread as far as positivity allows
	// (a uniform with standard deviation s spans mean +/- s*sqrt(3)).
	spread := math.Min(outageStd(c.Outages)*math.Sqrt(3), 0.95*mean)
	cfg.Infrastructure.FabricRepairLoHours = c.record("fabric_repair_lo_hours", mean-spread,
		"h", SourceOutages, "mean - min(std*sqrt(3), 0.95*mean) of raw outage durations")
	cfg.Infrastructure.FabricRepairHiHours = c.record("fabric_repair_hi_hours", mean+spread,
		"h", SourceOutages, "mean + min(std*sqrt(3), 0.95*mean): Uniform(lo,hi) keeps the empirical mean")

	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("calibrate: calibrated configuration invalid: %w", err)
	}
	c.Config = cfg
	return nil
}

// outageStd returns the sample standard deviation of the raw outage
// durations (0 for fewer than two outages).
func outageStd(r loganalysis.OutageReport) float64 {
	durations := r.OutageDurations()
	if len(durations) < 2 {
		return 0
	}
	mean := r.MeanOutageHours()
	var ss float64
	for _, d := range durations {
		ss += (d - mean) * (d - mean)
	}
	return math.Sqrt(ss / float64(len(durations)-1))
}

// LogConfig maps the calibration back onto the synthetic log generator: a
// loggen.Generate run under the returned configuration produces logs whose
// re-derived rates match this calibration's inputs within statistical
// tolerance — the round trip that proves the loop is closed. The base
// supplies the window geometry and population counts; every rate parameter
// is overridden by its derived value.
func (c *Calibration) LogConfig(base loggen.Config) loggen.Config {
	out := base
	out.Disks = c.Population
	out.JobsPerHour = c.Rates.JobsPerHour
	out.TransientJobFailureProb = c.Rates.TransientJobFailureFraction
	out.OtherJobFailureProb = c.Rates.OtherJobFailureFraction
	out.OutagesPerMonth = c.Rates.OutagesPerMonth
	out.OutageMeanHours = c.Rates.MeanOutageHours
	if std := outageStd(c.Outages); std > 0 {
		out.OutageSpreadHours = std
	}
	out.DiskShape = c.Rates.DiskWeibullShape
	out.DiskMTBFHours = c.Rates.DiskMTBFHours
	// Cause mix: relative outage counts per cause.
	weights := map[string]float64{}
	for _, o := range c.Outages.Outages {
		weights[o.Cause]++
	}
	if len(weights) > 0 {
		out.OutageCauseWeights = weights
	}
	// Table 2: mount-failure bursts per month and the largest burst.
	if len(c.Mounts) > 0 {
		window := c.Jobs.WindowEnd.Sub(c.Jobs.WindowStart).Hours()
		if window > 0 {
			out.MountFailureBurstsPerMonth = float64(len(c.Mounts)) / (window / 720)
		}
		maxNodes := 0
		for _, d := range c.Mounts {
			if d.Nodes > maxNodes {
				maxNodes = d.Nodes
			}
		}
		if maxNodes > 0 {
			out.MountFailureMaxNodes = maxNodes
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Machine-readable report
// ---------------------------------------------------------------------------

// DistSpec is the serialized form of a fitted distribution.
type DistSpec struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params"`
}

func distSpec(d dist.Distribution) DistSpec {
	return DistSpec{Name: d.Name(), Params: d.Params()}
}

// Report is the machine-readable form of a calibration — the "calibration"
// section of the paper_full JSON artifact.
type Report struct {
	// Population is the monitored disk population.
	Population int `json:"population"`
	// Rates echoes the scalar derived rates.
	Rates loganalysis.DerivedRates `json:"rates"`
	// Parameters lists every derived model parameter with provenance.
	Parameters []Parameter `json:"parameters"`
	// DiskLifetime, OutageDuration, and DiskRepair are the fitted
	// distributions (DiskRepair omitted when the log has no replacements).
	DiskLifetime   DistSpec  `json:"disk_lifetime"`
	OutageDuration DistSpec  `json:"outage_duration"`
	DiskRepair     *DistSpec `json:"disk_repair,omitempty"`
}

// Report returns the machine-readable form of the calibration.
func (c *Calibration) Report() Report {
	rep := Report{
		Population:     c.Population,
		Rates:          c.Rates,
		Parameters:     c.Provenance,
		DiskLifetime:   distSpec(c.DiskLifetime),
		OutageDuration: distSpec(c.OutageDuration),
	}
	if c.HasDiskRepair {
		spec := distSpec(c.DiskRepair)
		rep.DiskRepair = &spec
	}
	return rep
}

// Table renders the provenance record the way Table 5 presents parameters:
// one row per derived parameter with value, unit, and source.
func (c *Calibration) Table() report.Table {
	t := report.Table{
		Title:   "Calibrated model parameters (derived from logs)",
		Headers: []string{"Parameter", "Value", "Unit", "Source", "Derivation"},
	}
	for _, p := range c.Provenance {
		t.AddRow(p.Name, p.Value, p.Unit, p.Source, p.Detail)
	}
	return t
}
