package dist

import (
	"math"

	"repro/internal/rng"
)

// Exponential is the memoryless delay family used for hardware/software MTBF
// and event inter-arrival times throughout the models.
type Exponential struct {
	mean float64
}

// NewExponentialFromMean returns an exponential distribution with the given
// mean (1/rate).
func NewExponentialFromMean(mean float64) (Exponential, error) {
	if err := checkPositive("mean", mean); err != nil {
		return Exponential{}, err
	}
	return Exponential{mean: mean}, nil
}

// NewExponentialFromRate returns an exponential distribution with the given
// rate (events per unit time).
func NewExponentialFromRate(rate float64) (Exponential, error) {
	if err := checkPositive("rate", rate); err != nil {
		return Exponential{}, err
	}
	return Exponential{mean: 1 / rate}, nil
}

// Sample draws via the inverse-CDF transform; OpenFloat64 keeps the log
// argument strictly inside (0, 1).
func (e Exponential) Sample(s *rng.Stream) float64 {
	return -e.mean * math.Log(s.OpenFloat64())
}

// Mean returns the expected value.
func (e Exponential) Mean() float64 { return e.mean }

// Rate returns the event rate 1/mean.
func (e Exponential) Rate() float64 { return 1 / e.mean }

// Variance returns mean^2.
func (e Exponential) Variance() float64 { return e.mean * e.mean }

// ThirdMoment returns E[X^3] = 6*mean^3.
func (e Exponential) ThirdMoment() float64 { return 6 * e.mean * e.mean * e.mean }

// CDF returns 1 - exp(-x/mean) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-x / e.mean)
}

// Quantile returns -mean*ln(1-p).
func (e Exponential) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return -e.mean * math.Log1p(-p)
}

// Name implements Distribution.
func (Exponential) Name() string { return "exponential" }

// Params implements Distribution.
func (e Exponential) Params() map[string]float64 {
	return map[string]float64{"mean": e.mean}
}

// Uniform is the bounded delay family used for manual repair windows (e.g.
// 12-36 h hardware replacement in Table 5).
type Uniform struct {
	lo, hi float64
}

// NewUniform returns a uniform distribution on [lo, hi). It requires
// lo < hi; both bounds must be finite.
func NewUniform(lo, hi float64) (Uniform, error) {
	if err := checkFinite("lo", lo); err != nil {
		return Uniform{}, err
	}
	if err := checkFinite("hi", hi); err != nil {
		return Uniform{}, err
	}
	if !(lo < hi) {
		return Uniform{}, errInvalidf("uniform bounds must satisfy lo < hi, got [%v, %v]", lo, hi)
	}
	return Uniform{lo: lo, hi: hi}, nil
}

// Lo returns the lower bound.
func (u Uniform) Lo() float64 { return u.lo }

// Hi returns the upper bound.
func (u Uniform) Hi() float64 { return u.hi }

// Sample draws uniformly from [lo, hi).
func (u Uniform) Sample(s *rng.Stream) float64 {
	return u.lo + (u.hi-u.lo)*s.Float64()
}

// Mean returns (lo+hi)/2.
func (u Uniform) Mean() float64 { return u.lo + (u.hi-u.lo)/2 }

// Variance returns (hi-lo)^2/12.
func (u Uniform) Variance() float64 {
	w := u.hi - u.lo
	return w * w / 12
}

// ThirdMoment returns E[X^3] = (hi^4 - lo^4) / (4*(hi-lo)), written in the
// factored form (lo^3 + lo^2*hi + lo*hi^2 + hi^3)/4 to avoid cancellation.
func (u Uniform) ThirdMoment() float64 {
	lo, hi := u.lo, u.hi
	return (lo*lo*lo + lo*lo*hi + lo*hi*hi + hi*hi*hi) / 4
}

// CDF returns the fraction of mass at or below x.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.lo:
		return 0
	case x >= u.hi:
		return 1
	default:
		return (x - u.lo) / (u.hi - u.lo)
	}
}

// Quantile returns lo + p*(hi-lo).
func (u Uniform) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return u.lo + p*(u.hi-u.lo)
}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Params implements Distribution.
func (u Uniform) Params() map[string]float64 {
	return map[string]float64{"lo": u.lo, "hi": u.hi}
}

// Deterministic is a point mass, used for fixed delays such as spare
// activation and scheduled disk replacement times.
type Deterministic struct {
	value float64
}

// NewDeterministic returns a point mass at value. Negative delays make no
// sense for the simulator, so value must be finite and >= 0.
func NewDeterministic(value float64) (Deterministic, error) {
	if err := checkFinite("value", value); err != nil {
		return Deterministic{}, err
	}
	if value < 0 {
		return Deterministic{}, errInvalidf("deterministic value must be >= 0, got %v", value)
	}
	return Deterministic{value: value}, nil
}

// Sample returns the fixed value without consuming randomness, so swapping a
// deterministic delay into a model does not perturb other components'
// streams.
func (d Deterministic) Sample(*rng.Stream) float64 { return d.value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.value }

// Variance returns 0.
func (Deterministic) Variance() float64 { return 0 }

// ThirdMoment returns E[X^3] = value^3.
func (d Deterministic) ThirdMoment() float64 { return d.value * d.value * d.value }

// CDF is the unit step at the fixed value.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.value {
		return 0
	}
	return 1
}

// Quantile returns the fixed value for every p in [0, 1].
func (d Deterministic) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return d.value
}

// Name implements Distribution.
func (Deterministic) Name() string { return "deterministic" }

// Params implements Distribution.
func (d Deterministic) Params() map[string]float64 {
	return map[string]float64{"value": d.value}
}
