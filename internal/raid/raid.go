// Package raid models the storage hardware of the ABE cluster file system:
// RAID6 (m+k) tiers of disks behind DDN storage units with redundant RAID
// controllers. It provides both a stochastic-activity-network submodel
// builder (used by the composed CFS model and by the Figure 2/3 experiments)
// and analytic approximations used as baselines and cross-checks.
//
// The ABE scratch partition is 2 DataDirect Networks S2A9550 units, each
// with 8 FC ports x 3 tiers of (8+2) 250 GB SATA disks in RAID6 — 480 disks
// for 96 TB usable. Blue Waters-style systems move to (8+3).
package raid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/san"
)

// Defaults matching the ABE cluster as described in the paper (Section 3).
const (
	// DefaultDataDisks and DefaultParityDisks give the (8+2) RAID6 geometry.
	DefaultDataDisks   = 8
	DefaultParityDisks = 2
	// DefaultTiersPerDDN: each S2A9550 has 8 ports x 3 tiers.
	DefaultTiersPerDDN = 24
	// DefaultDiskCapacityGB is the ABE-era disk size (250 GB).
	DefaultDiskCapacityGB = 250.0
	// DefaultDiskMTBFHours is the MTBF the paper estimates by matching the
	// observed replacement rate (300,000 h, AFR 2.92%).
	DefaultDiskMTBFHours = 300000.0
	// DefaultDiskShape is the Weibull shape fitted to the ABE disk logs.
	DefaultDiskShape = 0.7
	// DefaultReplaceHours is the disk replacement time used for the ABE
	// configuration (1-12 h range in Table 5; 4 h in the figure labels).
	DefaultReplaceHours = 4.0
	// DefaultControllerMTBFHours is the per-controller hardware MTBF. The
	// paper's Table 5 reports 1-2 hardware failures per 720 hours for the
	// CFS as a whole; spread over the dozen-plus major hardware components
	// (OSS servers, RAID controllers, FC ports/switches) this corresponds to
	// roughly one failure per controller-year, which keeps the RAID6
	// storage-availability at ~1 for the ABE configuration as the paper
	// observes (Figure 2, first data point).
	DefaultControllerMTBFHours = 8760.0
	// Controller repairs take 12-36 hours (vendor part procurement).
	DefaultControllerRepairLoHours = 12.0
	DefaultControllerRepairHiHours = 36.0
)

// Validation errors.
var (
	ErrBadGeometry = errors.New("raid: invalid tier geometry")
	ErrBadConfig   = errors.New("raid: invalid storage configuration")
)

// TierGeometry is the RAID layout of one tier: Data+Parity disks, tolerating
// up to Parity concurrent disk failures.
type TierGeometry struct {
	Data   int
	Parity int
}

// Disks returns the total number of disks in a tier.
func (g TierGeometry) Disks() int { return g.Data + g.Parity }

// String renders the geometry as "8+2".
func (g TierGeometry) String() string { return fmt.Sprintf("%d+%d", g.Data, g.Parity) }

// Validate checks the geometry.
func (g TierGeometry) Validate() error {
	if g.Data < 1 || g.Parity < 0 {
		return fmt.Errorf("%w: %s", ErrBadGeometry, g)
	}
	return nil
}

// DiskConfig describes the disk failure/replacement process.
type DiskConfig struct {
	// ShapeBeta is the Weibull shape parameter (0.6-1.0 in the paper).
	ShapeBeta float64
	// MTBFHours is the mean time between failures of one disk.
	MTBFHours float64
	// ReplaceHours is the deterministic replacement/rebuild time.
	ReplaceHours float64
	// CapacityGB is the per-disk capacity used for usable-space accounting.
	CapacityGB float64
}

// AFR returns the annualized failure rate fraction implied by MTBFHours.
func (d DiskConfig) AFR() float64 { return dist.HoursPerYear / d.MTBFHours }

// Validate checks the disk parameters.
func (d DiskConfig) Validate() error {
	if !(d.ShapeBeta > 0) || !(d.MTBFHours > 0) || !(d.ReplaceHours > 0) || !(d.CapacityGB > 0) {
		return fmt.Errorf("%w: disk %+v", ErrBadConfig, d)
	}
	return nil
}

// ControllerConfig describes one RAID controller of a DDN unit. Controllers
// are deployed as fail-over pairs; the unit is unavailable only when both
// members are down.
type ControllerConfig struct {
	// MTBFHours is the mean time between hardware failures of one
	// controller (720/1.5 = 480 h for the paper's 1-2 per month).
	MTBFHours float64
	// RepairLoHours and RepairHiHours bound the uniform repair time.
	RepairLoHours float64
	RepairHiHours float64
}

// Validate checks the controller parameters.
func (c ControllerConfig) Validate() error {
	if !(c.MTBFHours > 0) || !(c.RepairLoHours > 0) || c.RepairHiHours < c.RepairLoHours {
		return fmt.Errorf("%w: controller %+v", ErrBadConfig, c)
	}
	return nil
}

// StorageConfig describes the full storage subsystem: a number of DDN units,
// each with redundant controllers and a set of RAID tiers.
type StorageConfig struct {
	DDNUnits    int
	TiersPerDDN int
	Geometry    TierGeometry
	Disk        DiskConfig
	Controller  ControllerConfig
}

// DefaultDisk returns the ABE disk configuration.
func DefaultDisk() DiskConfig {
	return DiskConfig{
		ShapeBeta:    DefaultDiskShape,
		MTBFHours:    DefaultDiskMTBFHours,
		ReplaceHours: DefaultReplaceHours,
		CapacityGB:   DefaultDiskCapacityGB,
	}
}

// DefaultController returns the ABE controller configuration.
func DefaultController() ControllerConfig {
	return ControllerConfig{
		MTBFHours:     DefaultControllerMTBFHours,
		RepairLoHours: DefaultControllerRepairLoHours,
		RepairHiHours: DefaultControllerRepairHiHours,
	}
}

// ABEStorage returns the storage configuration of the ABE scratch partition:
// 2 S2A9550 units, 24 (8+2) tiers each, 480 disks, 96 TB usable.
func ABEStorage() StorageConfig {
	return StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: DefaultTiersPerDDN,
		Geometry:    TierGeometry{Data: DefaultDataDisks, Parity: DefaultParityDisks},
		Disk:        DefaultDisk(),
		Controller:  DefaultController(),
	}
}

// Validate checks the whole storage configuration.
func (c StorageConfig) Validate() error {
	if c.DDNUnits < 1 || c.TiersPerDDN < 1 {
		return fmt.Errorf("%w: %d DDN units x %d tiers", ErrBadConfig, c.DDNUnits, c.TiersPerDDN)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	return c.Controller.Validate()
}

// TotalTiers returns the number of RAID tiers in the subsystem.
func (c StorageConfig) TotalTiers() int { return c.DDNUnits * c.TiersPerDDN }

// TotalDisks returns the number of disks in the subsystem.
func (c StorageConfig) TotalDisks() int { return c.TotalTiers() * c.Geometry.Disks() }

// UsableTB returns the usable capacity in terabytes (data disks only).
func (c StorageConfig) UsableTB() float64 {
	return float64(c.TotalTiers()*c.Geometry.Data) * c.Disk.CapacityGB / 1000.0
}

// ScaledToDisks returns a copy of the configuration with the number of DDN
// units chosen so the total disk count is at least disks (keeping the tier
// geometry and tiers-per-DDN fixed). This is how the Figure 3 sweep scales
// the ABE system.
func (c StorageConfig) ScaledToDisks(disks int) (StorageConfig, error) {
	if disks < 1 {
		return StorageConfig{}, fmt.Errorf("%w: target disk count %d", ErrBadConfig, disks)
	}
	perDDN := c.TiersPerDDN * c.Geometry.Disks()
	units := (disks + perDDN - 1) / perDDN
	out := c
	out.DDNUnits = units
	return out, nil
}

// ScaledToUsableTB returns a copy of the configuration scaled (by adding DDN
// units and growing per-disk capacity) to reach the target usable capacity,
// assuming the given annual disk-capacity growth over years. This mirrors
// the Figure 2 x-axis, which scales the ABE system by storage size.
func (c StorageConfig) ScaledToUsableTB(targetTB, annualCapacityGrowth float64, years float64) (StorageConfig, error) {
	if !(targetTB > 0) {
		return StorageConfig{}, fmt.Errorf("%w: target capacity %v TB", ErrBadConfig, targetTB)
	}
	out := c
	out.Disk.CapacityGB = c.Disk.CapacityGB * math.Pow(1+annualCapacityGrowth, years)
	perDDNTB := float64(c.TiersPerDDN*c.Geometry.Data) * out.Disk.CapacityGB / 1000.0
	units := int(math.Ceil(targetTB / perDDNTB))
	if units < 1 {
		units = 1
	}
	out.DDNUnits = units
	return out, nil
}

// ---------------------------------------------------------------------------
// SAN submodel builder
// ---------------------------------------------------------------------------

// StoragePlaces exposes the shared state of the storage submodel to the rest
// of the composed CFS model and to reward variables.
type StoragePlaces struct {
	// TiersFailed counts RAID tiers currently in the data-unavailable state
	// (more than Parity disks concurrently failed).
	TiersFailed *san.Place
	// DDNFailed counts DDN units whose controller fail-over pair is entirely
	// down.
	DDNFailed *san.Place
	// DisksDown counts disks currently awaiting replacement.
	DisksDown *san.Place
	// ReplaceActivities lists the names of every disk-replacement activity,
	// for completion-count rewards (disk replacement rate).
	ReplaceActivities []string
	// TierFailedDisks lists the per-tier concurrently-failed-disk places in
	// build order. The rare-event experiments derive their importance
	// function (maximum concurrent failures in any tier) from these.
	TierFailedDisks []*san.Place
	// Config echoes the configuration the submodel was built from.
	Config StorageConfig
}

// Operational reports whether the storage subsystem is fully operational in
// marking m: no failed tier and no DDN unit without a working controller.
func (sp *StoragePlaces) Operational(m san.MarkingReader) bool {
	return m.Tokens(sp.TiersFailed) == 0 && m.Tokens(sp.DDNFailed) == 0
}

// BuildStorage adds the storage subsystem (all DDN units, controllers,
// tiers, and disks) to model under the given namespace prefix and returns
// the shared places. It mirrors the DDN_UNITS / RAID_CONTROLLER /
// RAID6_TIERS composition of the paper's Figure 1.
func BuildStorage(m *san.Model, prefix string, cfg StorageConfig) (*StoragePlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := &StoragePlaces{Config: cfg}
	var err error
	sp.TiersFailed, err = m.AddPlaceErr(san.Qualify(prefix, "tiers_failed"), 0)
	if err != nil {
		return nil, err
	}
	sp.DDNFailed, err = m.AddPlaceErr(san.Qualify(prefix, "ddn_failed"), 0)
	if err != nil {
		return nil, err
	}
	sp.DisksDown, err = m.AddPlaceErr(san.Qualify(prefix, "disks_down"), 0)
	if err != nil {
		return nil, err
	}

	diskLife, err := dist.NewWeibullFromMTBF(cfg.Disk.ShapeBeta, cfg.Disk.MTBFHours)
	if err != nil {
		return nil, err
	}
	diskReplace, err := dist.NewDeterministic(cfg.Disk.ReplaceHours)
	if err != nil {
		return nil, err
	}
	ctrlLife, err := dist.NewExponentialFromMean(cfg.Controller.MTBFHours)
	if err != nil {
		return nil, err
	}
	ctrlRepair, err := dist.NewUniform(cfg.Controller.RepairLoHours, cfg.Controller.RepairHiHours)
	if err != nil {
		return nil, err
	}

	err = san.Replicate(m, san.Qualify(prefix, "ddn"), cfg.DDNUnits, func(m *san.Model, ddnPrefix string, _ int) error {
		if err := buildControllerPair(m, ddnPrefix, ctrlLife, ctrlRepair, sp); err != nil {
			return err
		}
		return san.Replicate(m, san.Qualify(ddnPrefix, "tier"), cfg.TiersPerDDN, func(m *san.Model, tierPrefix string, _ int) error {
			return buildTier(m, tierPrefix, cfg.Geometry, diskLife, diskReplace, sp)
		})
	})
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// buildControllerPair models the redundant RAID controllers of one DDN unit.
// The unit becomes unavailable only when both controllers are down, matching
// the paper's fail-over-pair assumption.
func buildControllerPair(m *san.Model, prefix string, life, repair dist.Distribution, sp *StoragePlaces) error {
	pairDown, err := m.AddPlaceErr(san.Qualify(prefix, "controllers_down"), 0)
	if err != nil {
		return err
	}
	return san.Replicate(m, san.Qualify(prefix, "controller"), 2, func(m *san.Model, cPrefix string, _ int) error {
		up, err := m.AddPlaceErr(san.Qualify(cPrefix, "up"), 1)
		if err != nil {
			return err
		}
		down, err := m.AddPlaceErr(san.Qualify(cPrefix, "down"), 0)
		if err != nil {
			return err
		}
		m.AddTimedActivity(san.Qualify(cPrefix, "fail"), life).
			AddInputArc(up, 1).
			AddOutputArc(down, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(cPrefix, "fail_og"),
				Transform: func(mw san.MarkingWriter) {
					mw.Add(pairDown, 1)
					if mw.Tokens(pairDown) == 2 {
						mw.Add(sp.DDNFailed, 1)
					}
				},
			})
		m.AddTimedActivity(san.Qualify(cPrefix, "repair"), repair).
			AddInputArc(down, 1).
			AddOutputArc(up, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(cPrefix, "repair_og"),
				Transform: func(mw san.MarkingWriter) {
					if mw.Tokens(pairDown) == 2 {
						mw.Add(sp.DDNFailed, -1)
					}
					mw.Add(pairDown, -1)
				},
			})
		return nil
	})
}

// buildTier models one RAID (m+k) tier: each disk fails with a Weibull
// lifetime and is replaced (good-as-new) after a deterministic delay. The
// tier is considered failed while more than Parity disks are concurrently
// down.
func buildTier(m *san.Model, prefix string, g TierGeometry, life, replace dist.Distribution, sp *StoragePlaces) error {
	failedDisks, err := m.AddPlaceErr(san.Qualify(prefix, "failed_disks"), 0)
	if err != nil {
		return err
	}
	sp.TierFailedDisks = append(sp.TierFailedDisks, failedDisks)
	parity := g.Parity
	return san.Replicate(m, san.Qualify(prefix, "disk"), g.Disks(), func(m *san.Model, dPrefix string, _ int) error {
		up, err := m.AddPlaceErr(san.Qualify(dPrefix, "up"), 1)
		if err != nil {
			return err
		}
		down, err := m.AddPlaceErr(san.Qualify(dPrefix, "down"), 0)
		if err != nil {
			return err
		}
		m.AddTimedActivity(san.Qualify(dPrefix, "fail"), life).
			AddInputArc(up, 1).
			AddOutputArc(down, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(dPrefix, "fail_og"),
				Transform: func(mw san.MarkingWriter) {
					mw.Add(sp.DisksDown, 1)
					mw.Add(failedDisks, 1)
					if mw.Tokens(failedDisks) == parity+1 {
						mw.Add(sp.TiersFailed, 1)
					}
				},
			})
		replaceName := san.Qualify(dPrefix, "replace")
		m.AddTimedActivity(replaceName, replace).
			AddInputArc(down, 1).
			AddOutputArc(up, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(dPrefix, "replace_og"),
				Transform: func(mw san.MarkingWriter) {
					if mw.Tokens(failedDisks) == parity+1 {
						mw.Add(sp.TiersFailed, -1)
					}
					mw.Add(failedDisks, -1)
					mw.Add(sp.DisksDown, -1)
				},
			})
		sp.ReplaceActivities = append(sp.ReplaceActivities, replaceName)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Reward variables
// ---------------------------------------------------------------------------

// AvailabilityReward returns the time-averaged storage availability reward
// (the measure plotted in Figure 2).
func (sp *StoragePlaces) AvailabilityReward(name string) san.RewardVariable {
	return san.UpFraction(name, sp.Operational)
}

// ReplacementCountReward returns the accumulated count of disk replacements
// over the mission (convert to per-week with 168/mission — Figure 3).
func (sp *StoragePlaces) ReplacementCountReward(name string) san.RewardVariable {
	return san.CompletionCount(name, sp.ReplaceActivities...)
}

// MaxFailedDisksImportance returns the importance function used by the
// rare-event splitting experiments: the maximum number of concurrently
// failed disks in any single tier. Data loss — some tier with more than
// Parity disks down — corresponds to importance >= Parity+1, so the natural
// splitting levels are 1, 2, ..., Parity+1.
func (sp *StoragePlaces) MaxFailedDisksImportance() san.ImportanceFunc {
	places := sp.TierFailedDisks
	return func(m san.MarkingReader) float64 {
		worst := 0
		for _, p := range places {
			if n := m.Tokens(p); n > worst {
				worst = n
			}
		}
		return float64(worst)
	}
}

// DataLossLevels returns the splitting levels for the configuration's
// geometry: one level per additional concurrent failure, up to the first
// data-losing count Parity+1.
func (c StorageConfig) DataLossLevels() []float64 {
	levels := make([]float64, c.Geometry.Parity+1)
	for i := range levels {
		levels[i] = float64(i + 1)
	}
	return levels
}

// ---------------------------------------------------------------------------
// Analytic approximations
// ---------------------------------------------------------------------------

// TierUnavailabilityExponential returns the steady-state unavailability of a
// single (m+k) tier under exponential disk lifetimes (MTBF hours) and
// exponential replacement (MTTR hours) with independent per-disk repair.
// It solves the birth-death chain on the number of failed disks; the tier is
// unavailable in states with more than Parity failures. This is the baseline
// the SAN simulation is cross-checked against for shape=1 disks.
func TierUnavailabilityExponential(g TierGeometry, mtbfHours, mttrHours float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if !(mtbfHours > 0) || !(mttrHours > 0) {
		return 0, fmt.Errorf("%w: mtbf %v mttr %v", ErrBadConfig, mtbfHours, mttrHours)
	}
	n := g.Disks()
	lambda := 1 / mtbfHours
	mu := 1 / mttrHours
	// Unnormalized steady-state probabilities pi_i via detailed balance:
	// pi_{i+1} = pi_i * (n-i)*lambda / ((i+1)*mu).
	pi := make([]float64, n+1)
	pi[0] = 1
	for i := 0; i < n; i++ {
		pi[i+1] = pi[i] * float64(n-i) * lambda / (float64(i+1) * mu)
	}
	var norm, unavail float64
	for i, p := range pi {
		norm += p
		if i > g.Parity {
			unavail += p
		}
	}
	return unavail / norm, nil
}

// StorageUnavailabilityExponential combines independent tier unavailability
// across all tiers of a configuration (ignoring controllers), assuming the
// subsystem is unavailable when any tier is unavailable.
func StorageUnavailabilityExponential(cfg StorageConfig, mttrHours float64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	u, err := TierUnavailabilityExponential(cfg.Geometry, cfg.Disk.MTBFHours, mttrHours)
	if err != nil {
		return 0, err
	}
	avail := math.Pow(1-u, float64(cfg.TotalTiers()))
	return 1 - avail, nil
}

// ExpectedReplacementsPerWeek returns the long-run expected number of disk
// replacements per week for the configuration: each disk alternates between
// a lifetime with mean MTBF and a replacement of ReplaceHours, so its
// renewal rate is 1/(MTBF+ReplaceHours).
func ExpectedReplacementsPerWeek(cfg StorageConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	perDisk := dist.HoursPerWeek / (cfg.Disk.MTBFHours + cfg.Disk.ReplaceHours)
	return perDisk * float64(cfg.TotalDisks()), nil
}
