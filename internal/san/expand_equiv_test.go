// Equivalence tests for the phase-type expansion, pinned against closed
// forms: the probability that a single expanded transition has fired by time
// T is exactly the original delay's CDF at T, so the certified solver on the
// expanded chain must reproduce dist.Gamma.CDF (Erlang) and the
// hypoexponential CDF (Sum of exponentials) to solver tolerance. An external
// test package because the solver lives downstream of san.
package san_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/san"
	"repro/internal/statespace"
)

// absorbedProbability builds pending -> activity(delay) -> done, expands the
// model, requires certification, and returns P[done at T] for each T.
func absorbedProbability(t *testing.T, delay dist.Distribution, times []float64) []float64 {
	t.Helper()
	m := san.NewModel("expand-equiv")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("transfer", delay).
		AddInputArc(pending, 1).
		AddOutputArc(done, 1)
	rep, err := san.ExpandPhases(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expanded) != 1 || len(rep.Refusals) != 0 {
		t.Fatalf("expected exactly one expansion, got %v / %v", rep.Expanded, rep.Refusals)
	}
	rewards := []san.RewardVariable{{
		Name: "absorbed",
		Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(done)) },
	}}
	cm, err := san.Compile(m, rewards)
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() {
		t.Fatalf("expanded model must certify, refusals: %v", cert.Refusals)
	}
	out := make([]float64, len(times))
	for i, T := range times {
		res, err := gen.SolveTransient(T)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res["absorbed"]
	}
	return out
}

// TestExpandedErlangMatchesGammaCDF pins the expanded-analytic answer for a
// single Erlang transition against dist.Gamma.CDF exactly (to solver
// tolerance).
func TestExpandedErlangMatchesGammaCDF(t *testing.T) {
	g, err := dist.NewErlang(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.5, 2, 6, 12, 24}
	got := absorbedProbability(t, g, times)
	for i, T := range times {
		want := g.CDF(T)
		if diff := math.Abs(got[i] - want); diff > 1e-8 {
			t.Errorf("T=%v: solver %v vs Gamma CDF %v (diff %v)", T, got[i], want, diff)
		}
	}
}

// TestExpandedSumMatchesHypoexponentialCDF pins a two-stage Sum of distinct
// exponentials against the closed-form hypoexponential CDF
// 1 - (b e^{-a t} - a e^{-b t}) / (b - a).
func TestExpandedSumMatchesHypoexponentialCDF(t *testing.T) {
	a, b := 0.7, 0.2
	ea, err := dist.NewExponentialFromRate(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := dist.NewExponentialFromRate(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dist.NewSum(ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.5, 2, 6, 12, 24}
	got := absorbedProbability(t, s, times)
	for i, T := range times {
		want := 1 - (b*math.Exp(-a*T)-a*math.Exp(-b*T))/(b-a)
		if diff := math.Abs(got[i] - want); diff > 1e-8 {
			t.Errorf("T=%v: solver %v vs hypoexponential CDF %v (diff %v)", T, got[i], want, diff)
		}
	}
}

// TestCertifyExpandedCarriesEvidence pins the statespace entry point: the
// certificate of an expanded model records the expansion evidence and
// summarizes as certified-after-expansion.
func TestCertifyExpandedCarriesEvidence(t *testing.T) {
	m := san.NewModel("certify-expanded")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	g, err := dist.NewErlang(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.AddTimedActivity("transfer", g).AddInputArc(pending, 1).AddOutputArc(done, 1)
	rewards := []san.RewardVariable{{
		Name: "absorbed",
		Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(done)) },
	}}
	_, cert, rep, err := statespace.CertifyExpanded(m, rewards, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified() {
		t.Fatalf("expanded model must certify, refusals: %v", cert.Refusals)
	}
	if len(cert.Expansions) != 1 || len(rep.Expanded) != 1 {
		t.Fatalf("certificate must carry the expansion evidence, got %v / %v", cert.Expansions, rep.Expanded)
	}
	sum := cert.Summary()
	if !strings.Contains(sum, "after phase expansion of 1 activities") {
		t.Fatalf("summary must surface the expansion: %q", sum)
	}
}
