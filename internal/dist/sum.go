package dist

import (
	"fmt"

	"repro/internal/rng"
)

// Sum is the distribution of the sum of independent draws from its parts —
// the convolution of the part distributions. It models sequential delays
// collapsed into one activity, e.g. the lumped client transient source whose
// renewal interval is an exponential inter-arrival plus a uniform outage
// window, or multi-stage repairs (dispatch + travel + fix).
type Sum struct {
	parts []Distribution
}

// NewSum returns the distribution of the sum of one independent draw from
// each part. At least two parts are required (a one-part sum is the part
// itself).
func NewSum(parts ...Distribution) (Sum, error) {
	if len(parts) < 2 {
		return Sum{}, errInvalidf("sum needs at least two parts, got %d", len(parts))
	}
	for i, p := range parts {
		if p == nil {
			return Sum{}, errInvalidf("sum part %d is nil", i)
		}
	}
	return Sum{parts: append([]Distribution(nil), parts...)}, nil
}

// Parts returns a copy of the part distributions in declaration order. The
// phase-type expansion pass (san.ExpandPhases) uses it to decide whether the
// convolution has an exact hypoexponential form.
func (d Sum) Parts() []Distribution {
	return append([]Distribution(nil), d.parts...)
}

// Sample draws one value from each part and returns the total.
func (d Sum) Sample(s *rng.Stream) float64 {
	total := 0.0
	for _, p := range d.parts {
		total += p.Sample(s)
	}
	return total
}

// Mean returns the sum of the part means (linearity of expectation).
func (d Sum) Mean() float64 {
	total := 0.0
	for _, p := range d.parts {
		total += p.Mean()
	}
	return total
}

// Name implements Distribution.
func (Sum) Name() string { return "sum" }

// Params implements Distribution: each part is reported as
// "<index>_<family>_<param>".
func (d Sum) Params() map[string]float64 {
	out := make(map[string]float64)
	for i, p := range d.parts {
		// Map-to-map merge; consumers (Describe, reports) sort the keys.
		for k, v := range p.Params() { //lint:sorted
			out[fmt.Sprintf("%d_%s_%s", i, p.Name(), k)] = v
		}
	}
	return out
}
