package loganalysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/loggen"
)

func ts(day, hour int) time.Time {
	return time.Date(2007, 7, day, hour, 0, 0, 0, time.UTC)
}

func TestParse(t *testing.T) {
	log := `2007-07-21T23:03:00Z san lustre-cfs OUTAGE_START cause="I/O hardware"
2007-07-22T12:00:00Z san lustre-cfs OUTAGE_END cause="I/O hardware"`
	events, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != loggen.OutageStart {
		t.Fatalf("parsed %d events: %+v", len(events), events)
	}
}

func TestAnalyzeOutagesTable1Style(t *testing.T) {
	// Recreate the first rows of Table 1: an outage of 12.95 h and one of
	// 18.2 h, plus a short file-system outage, inside a bounded window.
	events := []loggen.Event{
		{Time: ts(1, 0), Source: "san", Node: "lustre-cfs", Kind: loggen.DiskReplaced},
		{Time: ts(21, 23), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(22, 12), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageEnd, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(25, 1), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseFileSystem}},
		{Time: ts(25, 3), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageEnd, Attrs: map[string]string{"cause": loggen.CauseFileSystem}},
		{Time: ts(31, 0), Source: "san", Node: "lustre-cfs", Kind: loggen.DiskReplaced},
	}
	report, err := AnalyzeOutages(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outages) != 2 {
		t.Fatalf("outages = %d, want 2", len(report.Outages))
	}
	if got := report.Outages[0].Hours(); math.Abs(got-13) > 1e-9 {
		t.Errorf("first outage = %v h, want 13", got)
	}
	if math.Abs(report.DowntimeHours-15) > 1e-9 {
		t.Errorf("downtime = %v, want 15", report.DowntimeHours)
	}
	window := ts(31, 0).Sub(ts(1, 0)).Hours()
	wantAvail := 1 - 15/window
	if math.Abs(report.Availability-wantAvail) > 1e-9 {
		t.Errorf("availability = %v, want %v", report.Availability, wantAvail)
	}
	if report.DowntimeByCause[loggen.CauseIOHardware] != 13 || report.DowntimeByCause[loggen.CauseFileSystem] != 2 {
		t.Errorf("downtime by cause = %+v", report.DowntimeByCause)
	}
}

func TestAnalyzeOutagesCoalescesOverlapsAndOpenEnds(t *testing.T) {
	events := []loggen.Event{
		{Time: ts(1, 0), Source: "san", Node: "fabric", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseNetwork}},
		// Second start for a different component while the first is ongoing.
		{Time: ts(1, 2), Source: "san", Node: "ddn1", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(1, 4), Source: "san", Node: "fabric", Kind: loggen.OutageEnd},
		{Time: ts(1, 6), Source: "san", Node: "ddn1", Kind: loggen.OutageEnd},
		// An outage that never ends before the window closes.
		{Time: ts(2, 0), Source: "san", Node: "ddn2", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(2, 12), Source: "san", Node: "other", Kind: loggen.DiskReplaced},
	}
	report, err := AnalyzeOutages(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outages) != 3 {
		t.Fatalf("outages = %d, want 3", len(report.Outages))
	}
	// Coalesced downtime: 00:00-06:00 (overlap merged) + 00:00-12:00 on day 2.
	if math.Abs(report.DowntimeHours-18) > 1e-9 {
		t.Errorf("coalesced downtime = %v, want 18", report.DowntimeHours)
	}
}

func TestMeanOutageHoursWithOverlappingOutages(t *testing.T) {
	// Two 4-hour outages overlapping by 2 hours: coalesced downtime is 6 h,
	// but each outage lasted 4 h, so the mean outage duration is 4 h. The old
	// coalesced/count derivation reported 3 h.
	events := []loggen.Event{
		{Time: ts(1, 0), Source: "san", Node: "fabric", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseNetwork}},
		{Time: ts(1, 2), Source: "san", Node: "ddn1", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(1, 4), Source: "san", Node: "fabric", Kind: loggen.OutageEnd},
		{Time: ts(1, 6), Source: "san", Node: "ddn1", Kind: loggen.OutageEnd},
		{Time: ts(2, 0), Source: "san", Node: "other", Kind: loggen.DiskReplaced},
	}
	report, err := AnalyzeOutages(events)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.DowntimeHours-6) > 1e-9 {
		t.Errorf("coalesced downtime = %v, want 6", report.DowntimeHours)
	}
	if math.Abs(report.RawOutageHours-8) > 1e-9 {
		t.Errorf("raw outage hours = %v, want 8", report.RawOutageHours)
	}
	if got := report.MeanOutageHours(); math.Abs(got-4) > 1e-9 {
		t.Errorf("mean outage duration = %v, want 4 (raw), not 3 (coalesced/count)", got)
	}
	// DowntimeByCause attributes raw per-outage hours: the per-cause sum
	// equals RawOutageHours and may exceed the coalesced DowntimeHours — the
	// documented invariant for overlapping mixed-cause outages.
	var byCause float64
	for _, h := range report.DowntimeByCause {
		byCause += h
	}
	if math.Abs(byCause-report.RawOutageHours) > 1e-9 {
		t.Errorf("sum of DowntimeByCause = %v, want RawOutageHours %v", byCause, report.RawOutageHours)
	}
	if report.DowntimeByCause[loggen.CauseNetwork] != 4 || report.DowntimeByCause[loggen.CauseIOHardware] != 4 {
		t.Errorf("per-cause hours = %+v, want 4 h each", report.DowntimeByCause)
	}
	if !(byCause > report.DowntimeHours) {
		t.Errorf("overlapping mixed-cause outages should make per-cause sum %v exceed coalesced %v", byCause, report.DowntimeHours)
	}
	durations := report.OutageDurations()
	if len(durations) != 2 || math.Abs(durations[0]-4) > 1e-9 || math.Abs(durations[1]-4) > 1e-9 {
		t.Errorf("outage durations = %v, want [4 4]", durations)
	}
	if (OutageReport{}).MeanOutageHours() != 0 {
		t.Error("empty report should have zero mean outage duration")
	}
}

func TestDeriveRatesMeanOutageHoursUsesRawDurations(t *testing.T) {
	san := []loggen.Event{
		{Time: ts(1, 0), Source: "san", Node: "fabric", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseNetwork}},
		{Time: ts(1, 2), Source: "san", Node: "ddn1", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: ts(1, 4), Source: "san", Node: "fabric", Kind: loggen.OutageEnd},
		{Time: ts(1, 6), Source: "san", Node: "ddn1", Kind: loggen.OutageEnd},
		{Time: ts(3, 0), Source: "san", Node: "d1", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "500"}},
		{Time: ts(10, 0), Source: "san", Node: "end", Kind: loggen.DiskReplaced},
	}
	compute := []loggen.Event{
		{Time: ts(1, 0), Node: "c0001", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "1"}},
		{Time: ts(1, 5), Node: "c0001", Kind: loggen.JobEnd, Attrs: map[string]string{"job": "1", "status": loggen.JobOK}},
		{Time: ts(9, 0), Node: "c0002", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "2"}},
		{Time: ts(9, 5), Node: "c0002", Kind: loggen.JobEnd, Attrs: map[string]string{"job": "2", "status": loggen.JobOK}},
	}
	rates, err := DeriveRates(&loggen.Logs{SAN: san, Compute: compute}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates.MeanOutageHours-4) > 1e-9 {
		t.Errorf("derived mean outage duration = %v, want 4 (raw per-outage mean)", rates.MeanOutageHours)
	}
}

func TestAnalyzeOutagesErrors(t *testing.T) {
	if _, err := AnalyzeOutages(nil); err != ErrEmptyLog {
		t.Errorf("empty log error = %v", err)
	}
	noOutages := []loggen.Event{{Time: ts(1, 0), Kind: loggen.DiskReplaced, Node: "d"}}
	if _, err := AnalyzeOutages(noOutages); err == nil {
		t.Error("log without outages accepted")
	}
}

func TestAnalyzeMountFailures(t *testing.T) {
	events := []loggen.Event{
		{Time: ts(3, 10), Node: "c0001", Kind: loggen.MountFailure},
		{Time: ts(3, 10).Add(5 * time.Minute), Node: "c0001", Kind: loggen.MountFailure}, // duplicate, same node same day
		{Time: ts(3, 11), Node: "c0002", Kind: loggen.MountFailure},
		{Time: ts(19, 2), Node: "c0500", Kind: loggen.MountFailure},
		{Time: ts(19, 3), Node: "c0501", Kind: loggen.MountFailure},
		{Time: ts(19, 4), Node: "c0502", Kind: loggen.MountFailure},
		{Time: ts(20, 0), Node: "c0001", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "1"}},
	}
	days, err := AnalyzeMountFailures(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 {
		t.Fatalf("days = %d, want 2", len(days))
	}
	if days[0].Nodes != 2 {
		t.Errorf("day 1 nodes = %d, want 2 (duplicate filtered)", days[0].Nodes)
	}
	if days[1].Nodes != 3 {
		t.Errorf("day 2 nodes = %d, want 3", days[1].Nodes)
	}
	if _, err := AnalyzeMountFailures(nil); err != ErrEmptyLog {
		t.Error("empty log accepted")
	}
}

func TestAnalyzeJobsTable3Style(t *testing.T) {
	var events []loggen.Event
	addJob := func(day int, id string, status string) {
		events = append(events,
			loggen.Event{Time: ts(day, 1), Node: "c0001", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": id}},
			loggen.Event{Time: ts(day, 5), Node: "c0001", Kind: loggen.JobEnd, Attrs: map[string]string{"job": id, "status": status}},
		)
	}
	for i := 0; i < 40; i++ {
		addJob(1+i%20, "ok", loggen.JobOK)
	}
	for i := 0; i < 10; i++ {
		addJob(1+i%20, "t", loggen.JobFailedTransient)
	}
	addJob(5, "f1", loggen.JobFailedFileSystem)
	addJob(6, "f2", loggen.JobFailedFileSystem)

	stats, err := AnalyzeJobs(events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalJobs != 52 {
		t.Errorf("total jobs = %d, want 52", stats.TotalJobs)
	}
	if stats.TransientFailures != 10 || stats.OtherFailures != 2 {
		t.Errorf("failures = %d/%d, want 10/2", stats.TransientFailures, stats.OtherFailures)
	}
	if got := stats.FailureRatio(); math.Abs(got-5) > 1e-9 {
		t.Errorf("failure ratio = %v, want 5 (the paper's transient:other ratio)", got)
	}
	if got := stats.ClusterUtility(); math.Abs(got-(1-12.0/52.0)) > 1e-9 {
		t.Errorf("CU = %v", got)
	}
	if stats.JobFailureFraction() <= 0 {
		t.Error("failure fraction should be positive")
	}
	if _, err := AnalyzeJobs(nil); err != ErrEmptyLog {
		t.Error("empty log accepted")
	}
	if _, err := AnalyzeJobs([]loggen.Event{{Time: ts(1, 0), Kind: loggen.MountFailure}}); err == nil {
		t.Error("log without jobs accepted")
	}
	zero := JobStats{}
	if zero.FailureRatio() != 0 || zero.JobFailureFraction() != 0 {
		t.Error("zero-value stats should not divide by zero")
	}
}

func TestFailureRatioDistinguishesNoOtherFromNoTransient(t *testing.T) {
	// Transient failures with no other failures: the ratio is unbounded, not
	// zero — returning 0 here made "no other failures" indistinguishable from
	// "no transient failures".
	onlyTransient := JobStats{TotalJobs: 100, TransientFailures: 7}
	if got := onlyTransient.FailureRatio(); !math.IsInf(got, 1) {
		t.Errorf("FailureRatio with 7 transient / 0 other = %v, want +Inf", got)
	}
	onlyOther := JobStats{TotalJobs: 100, OtherFailures: 7}
	if got := onlyOther.FailureRatio(); got != 0 {
		t.Errorf("FailureRatio with 0 transient / 7 other = %v, want 0", got)
	}
	noFailures := JobStats{TotalJobs: 100}
	if got := noFailures.FailureRatio(); got != 0 {
		t.Errorf("FailureRatio with no failures = %v, want 0", got)
	}
}

func TestAnalyzeDisks(t *testing.T) {
	events := []loggen.Event{
		{Time: ts(1, 0), Node: "window-open", Kind: loggen.JobSubmit},
		{Time: ts(5, 1), Node: "ddn0-tier1-disk2", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "1200"}},
		{Time: ts(5, 5), Node: "ddn0-tier1-disk2", Kind: loggen.DiskReplaced},
		{Time: ts(5, 9), Node: "ddn0-tier2-disk3", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "300"}},
		{Time: ts(13, 1), Node: "ddn1-tier0-disk9", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "5200"}},
		{Time: ts(23, 1), Node: "ddn1-tier5-disk1", Kind: loggen.DiskFailed}, // no age attr
		{Time: ts(29, 0), Node: "window-close", Kind: loggen.JobSubmit},
	}
	report, err := AnalyzeDisks(events, 480)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalFailures != 4 || report.Replacements != 1 {
		t.Errorf("failures/replacements = %d/%d, want 4/1", report.TotalFailures, report.Replacements)
	}
	if len(report.ByDay) != 3 {
		t.Errorf("failure days = %d, want 3", len(report.ByDay))
	}
	if report.ByDay[0].Failures != 2 {
		t.Errorf("first day failures = %d, want 2", report.ByDay[0].Failures)
	}
	wantPerWeek := 4.0 / (ts(29, 0).Sub(ts(1, 0)).Hours() / 168)
	if math.Abs(report.PerWeek-wantPerWeek) > 1e-9 {
		t.Errorf("per week = %v, want %v", report.PerWeek, wantPerWeek)
	}
	// Exposure per incident: 4 failure events, the working replacement disk
	// in the repaired slot censored at its own age, and the 476 never-failed
	// slots censored at the window length — 481 observations in total.
	if report.Fit.Shape <= 0 || report.Fit.N != 481 || report.Fit.Events != 4 {
		t.Errorf("unexpected fit %+v", report.Fit)
	}
	if len(report.RepairHours) != 1 || math.Abs(report.RepairHours[0]-4) > 1e-9 {
		t.Errorf("repair lags = %v, want [4]", report.RepairHours)
	}
	if _, err := AnalyzeDisks(nil, 480); err != ErrEmptyLog {
		t.Error("empty log accepted")
	}
	if _, err := AnalyzeDisks(events, 0); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := AnalyzeDisks([]loggen.Event{{Time: ts(1, 0), Kind: loggen.JobSubmit}}, 480); err == nil {
		t.Error("log without disk failures accepted")
	}
}

func TestAnalyzeDisksCensoringAccounting(t *testing.T) {
	// Slot A fails twice (its replacement disk fails again and is replaced a
	// second time); slot B fails once and stays down. Each incident is one
	// exposure: 3 failure observations, plus slot A's second replacement disk
	// right-censored at its own age, plus the never-failed survivors.
	events := []loggen.Event{
		{Time: ts(1, 0), Node: "open", Kind: loggen.JobSubmit},
		{Time: ts(2, 0), Node: "slotA", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "100"}},
		{Time: ts(2, 4), Node: "slotA", Kind: loggen.DiskReplaced},
		{Time: ts(10, 4), Node: "slotA", Kind: loggen.DiskFailed}, // no age attr: age = time since renewal
		{Time: ts(10, 10), Node: "slotA", Kind: loggen.DiskReplaced},
		{Time: ts(12, 0), Node: "slotB", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "50"}},
		{Time: ts(20, 0), Node: "close", Kind: loggen.JobSubmit},
	}
	report, err := AnalyzeDisks(events, 5)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalFailures != 3 || report.Replacements != 2 {
		t.Errorf("failures/replacements = %d/%d, want 3/2", report.TotalFailures, report.Replacements)
	}
	// 3 events + 1 working replacement disk (slot A) + 3 never-failed
	// survivors (population 5, two distinct failed slots). Slot B is still
	// down at the window end, so it adds no censored exposure.
	if report.Fit.N != 7 || report.Fit.Events != 3 {
		t.Errorf("fit N/events = %d/%d, want 7/3", report.Fit.N, report.Fit.Events)
	}
	if len(report.RepairHours) != 2 || math.Abs(report.RepairHours[0]-4) > 1e-9 || math.Abs(report.RepairHours[1]-6) > 1e-9 {
		t.Errorf("repair lags = %v, want [4 6]", report.RepairHours)
	}

	// A population smaller than the number of distinct failed slots is
	// impossible; the old code silently under-censored instead of erroring.
	if _, err := AnalyzeDisks(events, 1); err == nil {
		t.Error("impossible population (1 slot, 2 distinct failed disks) accepted")
	} else if !strings.Contains(err.Error(), "impossible disk population") {
		t.Errorf("unexpected error for impossible population: %v", err)
	}
	// population == distinct failed slots is legal: every slot failed.
	if _, err := AnalyzeDisks(events, 2); err != nil {
		t.Errorf("population == distinct failed disks rejected: %v", err)
	}
}

func TestDeriveRatesOnSyntheticABELog(t *testing.T) {
	// End-to-end: generate the calibrated synthetic ABE logs and check that
	// the derived model parameters land near the paper's published values.
	logs, err := loggen.Generate(loggen.ABEConfig())
	if err != nil {
		t.Fatal(err)
	}
	rates, err := DeriveRates(logs, 480)
	if err != nil {
		t.Fatal(err)
	}
	if rates.CFSAvailability < 0.95 || rates.CFSAvailability > 0.995 {
		t.Errorf("availability from log = %v, want within the paper's 0.97-0.98 band (±loose)", rates.CFSAvailability)
	}
	if rates.TransientJobFailureFraction < 0.02 || rates.TransientJobFailureFraction > 0.04 {
		t.Errorf("transient job failure fraction = %v, want ~0.028 (1234/44085)", rates.TransientJobFailureFraction)
	}
	if rates.OtherJobFailureFraction <= 0 || rates.OtherJobFailureFraction > 0.01 {
		t.Errorf("other job failure fraction = %v, want ~0.004", rates.OtherJobFailureFraction)
	}
	ratio := rates.TransientJobFailureFraction / rates.OtherJobFailureFraction
	if ratio < 3 || ratio > 12 {
		t.Errorf("transient:other ratio = %v, want around 5-7", ratio)
	}
	if rates.JobsPerHour < 11 || rates.JobsPerHour > 15 {
		t.Errorf("jobs per hour = %v, want ~12.85", rates.JobsPerHour)
	}
	// The Weibull survival fit should show infant mortality (shape < 1) and
	// be loosely near the paper's 0.6963571 given the short window.
	if rates.DiskWeibullShape <= 0.3 || rates.DiskWeibullShape >= 1.2 {
		t.Errorf("disk Weibull shape = %v, want well below wear-out territory (~0.7 fit)", rates.DiskWeibullShape)
	}
	if rates.DiskReplacementsPerWeek <= 0 || rates.DiskReplacementsPerWeek > 3 {
		t.Errorf("disk replacements per week = %v, want the paper's 0-2 band", rates.DiskReplacementsPerWeek)
	}
	if rates.OutagesPerMonth <= 0 || rates.MeanOutageHours <= 0 {
		t.Errorf("outage rates not derived: %+v", rates)
	}
	if _, err := DeriveRates(nil, 480); err == nil {
		t.Error("nil logs accepted")
	}
}
