package sweep

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/abe"
	"repro/internal/san"
)

// testOpts keeps the simulation-backed tests cheap: short missions, few
// replications, small ABE-scale models.
func testOpts() san.Options {
	return san.Options{Mission: 1000, Replications: 4, Seed: 33, Parallelism: 4}
}

func testPoints() []Point {
	return []Point{
		{Config: abe.ABE()},
		{Label: "ABE +spare OSS", Config: abe.ABE().WithSpareOSS(true)},
		{Config: abe.ABE().ScaledBy(2)},
	}
}

func TestSweepBitIdenticalAcrossParallelism(t *testing.T) {
	opts := testOpts()
	opts.Parallelism = 1
	seq, err := Run(testPoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := Run(testPoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("sweep results differ across Parallelism:\n1: %+v\n4: %+v", seq.Points, par.Points)
	}
	if seq.TotalEvents != par.TotalEvents {
		t.Errorf("event counts differ across Parallelism: %d vs %d", seq.TotalEvents, par.TotalEvents)
	}
	// The JSON reports (which exclude execution details) must be
	// byte-identical too.
	seqJSON, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if seqJSON != parJSON {
		t.Error("JSON reports differ across Parallelism")
	}
}

func TestSweepPointsMatchStandaloneEvaluate(t *testing.T) {
	// Every sweep point must be bit-identical to a standalone abe.Evaluate
	// with the point's derived seed — the contract that makes sweep results
	// auditable one configuration at a time.
	opts := testOpts()
	points := testPoints()
	res, err := Run(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	seeds := PointSeeds(opts.Seed, len(points))
	for i, pt := range points {
		if res.Points[i].Seed != seeds[i] {
			t.Errorf("point %d seed = %d, want derived %d", i, res.Points[i].Seed, seeds[i])
		}
		standalone := opts
		standalone.Seed = seeds[i]
		want, err := abe.Evaluate(pt.Config, standalone)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Points[i].Measures, want) {
			t.Errorf("point %d (%s) differs from standalone Evaluate:\nsweep:      %+v\nstandalone: %+v",
				i, res.Points[i].Label, res.Points[i].Measures, want)
		}
	}
}

func TestSweepExplicitSeedPinsStudy(t *testing.T) {
	// A nonzero Point.Seed overrides derivation — the common-random-numbers
	// hook design comparisons use.
	opts := testOpts()
	const pinned = 777
	res, err := Run([]Point{{Config: abe.ABE(), Seed: pinned}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Seed != pinned {
		t.Fatalf("seed = %d, want pinned %d", res.Points[0].Seed, pinned)
	}
	standalone := opts
	standalone.Seed = pinned
	want, err := abe.Evaluate(abe.ABE(), standalone)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Points[0].Measures, want) {
		t.Error("pinned-seed point differs from standalone Evaluate with the same seed")
	}
}

func TestSweepLabelsAndTable(t *testing.T) {
	res, err := Run(testPoints(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Label != "ABE" {
		t.Errorf("default label = %q, want the config name", res.Points[0].Label)
	}
	if res.Points[1].Label != "ABE +spare OSS" {
		t.Errorf("explicit label = %q", res.Points[1].Label)
	}
	out := res.Table("Sweep").Render()
	for _, want := range []string{"ABE +spare OSS", "Storage availability", "Disks replaced/week"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSweepJSONSchema(t *testing.T) {
	res, err := Run(testPoints(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	text, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		MissionHours float64 `json:"mission_hours"`
		Replications int     `json:"replications"`
		Confidence   float64 `json:"confidence"`
		Seed         uint64  `json:"seed"`
		TotalEvents  uint64  `json:"total_events"`
		Points       []struct {
			Label               string  `json:"label"`
			Seed                uint64  `json:"seed"`
			TotalDisks          int     `json:"total_disks"`
			CFSAvailability     float64 `json:"cfs_availability"`
			StorageAvailability float64 `json:"storage_availability"`
			Intervals           map[string]struct {
				Mean      float64 `json:"mean"`
				HalfWidth float64 `json:"half_width"`
				N         int     `json:"n"`
			} `json:"intervals"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatalf("sweep report is not valid JSON: %v\n%s", err, text)
	}
	if doc.MissionHours != 1000 || doc.Replications != 4 || doc.Seed != 33 {
		t.Errorf("report options wrong: %+v", doc)
	}
	if len(doc.Points) != 3 {
		t.Fatalf("report points = %d, want 3", len(doc.Points))
	}
	if doc.Points[2].TotalDisks != 2*480 {
		t.Errorf("scaled point disks = %d, want 960", doc.Points[2].TotalDisks)
	}
	for _, p := range doc.Points {
		if p.CFSAvailability <= 0 || p.CFSAvailability > 1 {
			t.Errorf("point %q CFS availability %v out of range", p.Label, p.CFSAvailability)
		}
		ci, ok := p.Intervals[abe.RewardCFSAvailability]
		if !ok || ci.N != 4 {
			t.Errorf("point %q missing CFS interval (or wrong n): %+v", p.Label, p.Intervals)
		}
	}
	if doc.TotalEvents == 0 {
		t.Error("report records no simulated events")
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Run(nil, testOpts()); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty sweep error = %v, want ErrNoPoints", err)
	}
	// Invalid study options are rejected before any work.
	bad := testOpts()
	bad.Confidence = 1.5
	if _, err := Run(testPoints(), bad); err == nil {
		t.Error("invalid options accepted")
	}
	// An invalid configuration fails eagerly and names the point.
	broken := []Point{{Config: abe.ABE()}, {Label: "broken", Config: abe.Config{}}}
	_, err := Run(broken, testOpts())
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "point 1") {
		t.Errorf("error %q does not locate the broken point", err)
	}
}

func TestPointSeedsDeterministic(t *testing.T) {
	a := PointSeeds(9, 5)
	b := PointSeeds(9, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("PointSeeds not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Errorf("duplicate point seed %d", s)
		}
		seen[s] = true
	}
	if c := PointSeeds(10, 5); reflect.DeepEqual(a, c) {
		t.Error("different sweep seeds produced identical point seeds")
	}
}

func TestSweepReportModelStats(t *testing.T) {
	// Every point carries the model_stats view; a lumped point reports a
	// smaller evaluated model than its flat expansion, a flat point reports
	// identical sizes.
	points := []Point{
		{Config: abe.ABE()},
		{Label: "ABE lumped", Config: abe.ABE().WithExponentialForms().WithLumping(true)},
	}
	res, err := Run(points, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	flat := res.Points[0].ModelStats
	if flat.Lumped || flat.Places == 0 || flat.Places != flat.FlatPlaces || flat.Activities != flat.FlatActivities {
		t.Errorf("flat point model_stats inconsistent: %+v", flat)
	}
	lumped := res.Points[1].ModelStats
	if !lumped.Lumped || lumped.Places >= lumped.FlatPlaces || lumped.Activities >= lumped.FlatActivities {
		t.Errorf("lumped point model_stats inconsistent: %+v", lumped)
	}
	if lumped.FlatPlaces != flat.FlatPlaces || lumped.FlatActivities != flat.FlatActivities {
		t.Errorf("flat expansions differ: %+v vs %+v", lumped, flat)
	}
	text, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []struct {
			ModelStats struct {
				Places         int  `json:"places"`
				Activities     int  `json:"activities"`
				FlatPlaces     int  `json:"flat_places"`
				FlatActivities int  `json:"flat_activities"`
				Lumped         bool `json:"lumped"`
			} `json:"model_stats"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(doc.Points) != 2 || !doc.Points[1].ModelStats.Lumped || doc.Points[1].ModelStats.Places == 0 {
		t.Errorf("model_stats missing from JSON report: %+v", doc.Points)
	}
}

// TestSweepFitTierOptIn pins the approximate tier's opt-in contract: the
// Weibull-disk mini configuration simulates under default options (never
// silently approximate), and with PHFitTolerance set it is answered by the
// solver on a certified surrogate, labeled uniformization-approx, with the
// per-activity bounds in the certificate.
func TestSweepFitTierOptIn(t *testing.T) {
	point := []Point{{Config: abe.MiniWeibull()}}

	off := san.Options{Mission: 1000, Replications: 2, Seed: 5}
	resOff, err := Run(point, off)
	if err != nil {
		t.Fatal(err)
	}
	solver := resOff.Points[0].Solver
	if solver.Method != MethodSimulation {
		t.Fatalf("without opt-in the Weibull point must simulate, got %q", solver.Method)
	}
	if !hasPrefix(solver.Reasons, san.RefusalNonMemoryless) {
		t.Fatalf("refusals must stay classified: %v", solver.Reasons)
	}

	on := off
	on.PHFitTolerance = 0.1
	resOn, err := Run(point, on)
	if err != nil {
		t.Fatal(err)
	}
	solver = resOn.Points[0].Solver
	if solver.Method != MethodUniformizationApprox {
		t.Fatalf("with opt-in the Weibull point must answer approximately, got %q (reasons %v)",
			solver.Method, solver.Reasons)
	}
	cert := solver.Certificate
	if cert == nil || !cert.Certified() || len(cert.Approximations) == 0 {
		t.Fatalf("approximate answer must carry certified fit evidence: %+v", cert)
	}
	for _, ev := range cert.Approximations {
		if !(ev.Bound > 0 && ev.Bound <= on.PHFitTolerance) {
			t.Errorf("fit %q bound %v outside (0, %v]", ev.Activity, ev.Bound, on.PHFitTolerance)
		}
		if ev.Metric == "" || ev.Surrogate == "" || ev.Phases < 1 {
			t.Errorf("fit evidence incomplete: %+v", ev)
		}
	}
	// The approximate answer is exact for the surrogate: zero-width intervals.
	for name, ci := range resOn.Points[0].Measures.Intervals { //lint:sorted
		if ci.HalfWidth != 0 {
			t.Errorf("%s: approximate analytic interval must be zero-width, got %v", name, ci.HalfWidth)
		}
	}
	// The JSON report surfaces method and evidence.
	text, err := resOn.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `"method": "uniformization-approx"`) ||
		!strings.Contains(text, `"approximations"`) {
		t.Errorf("JSON report must label the approximate method and carry the evidence:\n%s", text)
	}
}

// TestSweepSolveFailureFallsBackToSimulation pins the solve-time failure
// path: the model certifies, but the uniformization constant of the huge
// mission exceeds the solver's budget mid-point, so the point falls back to
// simulation with the solver error recorded next to the (still certified)
// certificate.
func TestSweepSolveFailureFallsBackToSimulation(t *testing.T) {
	opts := san.Options{Mission: 2e6, Replications: 2, Seed: 5}
	res, err := Run([]Point{{Config: abe.MiniExponential()}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	solver := res.Points[0].Solver
	if solver.Certificate == nil || !solver.Certificate.Certified() {
		t.Fatalf("certification must succeed before the solve fails: %+v", solver.Certificate)
	}
	if solver.Method != MethodSimulation {
		t.Fatalf("failed solve must fall back to simulation, got %q", solver.Method)
	}
	if len(solver.Reasons) != 1 || !strings.Contains(solver.Reasons[0], "uniformization constant") {
		t.Fatalf("solver error must be recorded as the reason: %v", solver.Reasons)
	}
	// The fallback actually simulated: nonzero events and a real interval.
	if res.TotalEvents == 0 {
		t.Error("simulation fallback produced no events")
	}
	ci := res.Points[0].Measures.Intervals[abe.RewardCFSAvailability]
	if ci.N != 2 {
		t.Errorf("fallback interval not a 2-replication estimate: %+v", ci)
	}
}
